//! Transaction race paths (§3.2's `ESTALE` contract): two agents racing
//! commits for the same thread, and a commit against a thread that
//! already blocked. Both must fail cleanly — rejected status, counted in
//! stats, traced — while the trace keeps its commit-pairing invariant
//! (every `TxnCommitOk` consumes a matching `TxnArmed`).

use ghost_core::enclave::EnclaveConfig;
use ghost_core::msg::{Message, MsgType};
use ghost_core::policy::{GhostPolicy, PolicyCtx};
use ghost_core::runtime::GhostRuntime;
use ghost_core::txn::{Transaction, TxnStatus};
use ghost_sim::app::{App, Next};
use ghost_sim::kernel::{Kernel, KernelConfig, KernelState, ThreadSpec};
use ghost_sim::thread::{ThreadState, Tid};
use ghost_sim::time::{Nanos, MICROS, MILLIS};
use ghost_sim::topology::{CpuId, Topology};
use ghost_sim::CpuSet;
use ghost_trace::{check, TraceEvent, TraceSink};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Workload app: each thread runs `seg` then blocks; timers re-arm work.
struct PulseApp {
    conf: HashMap<Tid, (Nanos, Nanos)>, // (segment, period)
    completions: Arc<Mutex<HashMap<Tid, u64>>>,
}

impl App for PulseApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "pulse"
    }

    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        let tid = Tid(key as u32);
        let (seg, period) = self.conf[&tid];
        if k.threads[tid.index()].state == ThreadState::Blocked {
            k.thread_mut(tid).remaining = seg;
            k.wake(tid);
        }
        let app = k.thread(tid).app.expect("pulse thread has app");
        k.arm_app_timer(k.now + period, app, key);
    }

    fn on_segment_end(&mut self, tid: Tid, _k: &mut KernelState) -> Next {
        *self.completions.lock().unwrap().entry(tid).or_insert(0) += 1;
        Next::Block
    }
}

struct Setup {
    kernel: Kernel,
    runtime: GhostRuntime,
    enclave: ghost_core::runtime::EnclaveHandle,
    threads: Vec<Tid>,
    completions: Arc<Mutex<HashMap<Tid, u64>>>,
    sink: TraceSink,
}

fn setup(config: EnclaveConfig, policy: Box<dyn GhostPolicy>, n: usize) -> Setup {
    let sink = TraceSink::recording(1, 1 << 17);
    let mut kernel = Kernel::new(
        Topology::test_small(2), // 4 CPUs.
        KernelConfig {
            trace: sink.clone(),
            ..KernelConfig::default()
        },
    );
    let ncpus = kernel.state.topo.num_cpus();
    let runtime = GhostRuntime::new(ncpus);
    let cpus: CpuSet = (1..ncpus as u16).map(CpuId).collect();
    let enclave = runtime.launch_enclave(&mut kernel, cpus, config, policy);

    let app = kernel.state.next_app_id();
    let completions = Arc::new(Mutex::new(HashMap::new()));
    let mut conf = HashMap::new();
    let mut threads = Vec::new();
    for i in 0..n {
        let tid = kernel.spawn(ThreadSpec::workload(&format!("w{i}"), &kernel.state.topo).app(app));
        conf.insert(tid, (100 * MICROS, MILLIS));
        threads.push(tid);
    }
    kernel.add_app(Box::new(PulseApp {
        conf,
        completions: Arc::clone(&completions),
    }));
    for &tid in &threads {
        enclave.attach_thread(&mut kernel.state, tid);
    }
    for (i, &tid) in threads.iter().enumerate() {
        kernel
            .state
            .arm_app_timer((i as u64 + 1) * 10_000, app, tid.0 as u64);
    }
    Setup {
        kernel,
        runtime,
        enclave,
        threads,
        completions,
        sink,
    }
}

fn count(records: &[ghost_trace::TraceRecord], f: impl Fn(&TraceEvent) -> bool) -> usize {
    records.iter().filter(|r| f(&r.event)).count()
}

/// Two per-CPU agents race commits for one thread. Agent A handles the
/// thread's first wakeup, captures its `Tseq`, then reroutes the
/// thread's queue to agent B (`ASSOCIATE_QUEUE`). B deliberately sits on
/// the subsequent block/wakeup messages, so the thread's seq advances
/// where A cannot see it. When A's next tick activation commits with the
/// captured (now stale) seq, the kernel must reject it with `ESTALE` —
/// the exact out-of-date-agent race of §3.2 — and scheduling must
/// recover once A refreshes its view.
#[test]
fn racing_agents_get_estale_on_stale_seq() {
    #[derive(Default)]
    struct RacerPolicy {
        /// Latest Tseq per thread, from messages.
        seqs: HashMap<Tid, u64>,
        /// The racing thread, captured at its first wakeup.
        target: Option<Tid>,
        /// CPU of agent A (saw the first wakeup, holds the stale view).
        a_cpu: Option<CpuId>,
        /// Tseq agent A captured before rerouting the queue.
        stale_seq: u64,
        /// Wakeup arrived in the current activation (phase 0 trigger).
        pending_first: bool,
        /// 0 = waiting for first wakeup, 1 = stale view planted,
        /// 2 = ESTALE observed, schedule normally.
        phase: u8,
        stale_seen: Arc<Mutex<bool>>,
    }

    impl GhostPolicy for RacerPolicy {
        fn name(&self) -> &str {
            "racer"
        }

        fn on_msg(&mut self, msg: &Message, _ctx: &mut PolicyCtx<'_>) {
            if msg.ty.is_thread_msg() {
                self.seqs.insert(msg.tid, msg.seq);
            }
            if msg.ty == MsgType::ThreadWakeup && self.phase == 0 {
                self.target = Some(msg.tid);
                self.pending_first = true;
            }
        }

        fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
            let Some(target) = self.target else { return };
            match self.phase {
                0 if self.pending_first => {
                    self.pending_first = false;
                    let local = ctx.local_cpu();
                    self.a_cpu = Some(local);
                    self.stale_seq = self.seqs[&target];
                    // Reroute the thread's messages to another agent.
                    let other = ctx
                        .enclave_cpus()
                        .iter()
                        .find(|&c| c != local)
                        .expect("enclave has a second CPU");
                    assert!(ctx.associate_queue(target, ctx.queue_of_cpu(other)));
                    // Schedule it normally this once so it runs and its
                    // seq advances behind A's back.
                    let mut txn = Transaction::new(target, local).with_thread_seq(self.stale_seq);
                    assert_eq!(ctx.commit_one(&mut txn), TxnStatus::Committed);
                    self.phase = 1;
                }
                // Agent B stays silent in phase 1; agent A commits with
                // its stale seq as soon as its tick shows the thread
                // runnable again.
                1 if Some(ctx.local_cpu()) == self.a_cpu => {
                    if let Some(view) = ctx.thread_view(target) {
                        if view.runnable && view.tseq > self.stale_seq {
                            let mut txn = Transaction::new(target, ctx.local_cpu())
                                .with_thread_seq(self.stale_seq);
                            let status = ctx.commit_one(&mut txn);
                            assert_eq!(status, TxnStatus::Stale, "stale seq must ESTALE");
                            *self.stale_seen.lock().unwrap() = true;
                            self.phase = 2;
                        }
                    }
                }
                2 => {
                    // Recovered: schedule with a fresh view.
                    if let Some(view) = ctx.thread_view(target) {
                        if view.runnable {
                            let mut txn = Transaction::new(target, ctx.local_cpu())
                                .with_thread_seq(view.tseq);
                            ctx.commit_one(&mut txn);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    let stale_seen = Arc::new(Mutex::new(false));
    let policy = RacerPolicy {
        stale_seen: Arc::clone(&stale_seen),
        ..Default::default()
    };
    let mut s = setup(EnclaveConfig::per_cpu("race"), Box::new(policy), 1);
    s.kernel.run_until(60 * MILLIS);

    assert!(
        *stale_seen.lock().unwrap(),
        "cross-agent ESTALE never exercised"
    );
    let stats = s.runtime.stats();
    assert!(stats.txns_stale >= 1, "stale commits: {}", stats.txns_stale);
    assert!(s.enclave.alive());
    // The thread kept making progress after the failed commit.
    let done = s
        .completions
        .lock()
        .unwrap()
        .get(&s.threads[0])
        .copied()
        .unwrap_or(0);
    assert!(done >= 5, "thread progressed only {done} pulses");

    // Trace: the ESTALE has its own tracepoint, and commit pairing holds
    // (every TxnCommitOk consumed a TxnArmed; the failed commit armed
    // nothing).
    assert_eq!(s.sink.dropped(), 0);
    let records = s.sink.snapshot();
    assert!(
        count(&records, |e| matches!(
            e,
            TraceEvent::TxnCommitEstale { .. }
        )) >= 1,
        "ESTALE tracepoint missing"
    );
    let armed = count(&records, |e| matches!(e, TraceEvent::TxnArmed { .. }));
    let ok = count(&records, |e| matches!(e, TraceEvent::TxnCommitOk { .. }));
    assert_eq!(armed, ok, "unpaired transaction arm/commit");
    check::assert_clean(&records);
}

/// A buggy centralized agent commits a thread that already blocked
/// (skipping the seq constraint entirely). The kernel must reject it
/// with `TargetNotRunnable`, count it, and trace it as a commit race —
/// and the blocked thread must never actually be switched in.
#[test]
fn commit_after_block_is_rejected_not_runnable() {
    #[derive(Default)]
    struct BlockedCommitter {
        rq: Vec<Tid>,
        seqs: HashMap<Tid, u64>,
        sabotaged: bool,
        race_seen: Arc<Mutex<bool>>,
    }

    impl GhostPolicy for BlockedCommitter {
        fn name(&self) -> &str {
            "blocked-committer"
        }

        fn on_msg(&mut self, msg: &Message, _ctx: &mut PolicyCtx<'_>) {
            if msg.ty.is_thread_msg() {
                self.seqs.insert(msg.tid, msg.seq);
            }
            match msg.ty {
                MsgType::ThreadWakeup | MsgType::ThreadPreempted | MsgType::ThreadYield
                    if !self.rq.contains(&msg.tid) =>
                {
                    self.rq.push(msg.tid);
                }
                MsgType::ThreadBlocked | MsgType::ThreadDead => self.rq.retain(|&t| t != msg.tid),
                _ => {}
            }
        }

        fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
            // Sabotage once things are warm: pick a thread the enclave
            // manages that is currently blocked and commit it anyway.
            if !self.sabotaged && self.seqs.values().any(|&s| s >= 4) {
                let blocked = ctx
                    .managed_threads()
                    .into_iter()
                    .find(|&t| ctx.thread_view(t).is_some_and(|v| !v.runnable));
                if let (Some(tid), Some(cpu)) = (blocked, ctx.idle_cpus().first()) {
                    self.sabotaged = true;
                    let mut txn = Transaction::new(tid, cpu); // SeqConstraint::None
                    let status = ctx.commit_one(&mut txn);
                    assert_eq!(status, TxnStatus::TargetNotRunnable);
                    *self.race_seen.lock().unwrap() = true;
                }
            }
            let idle = ctx.idle_cpus();
            let mut txns = Vec::new();
            for (i, &tid) in self.rq.iter().enumerate() {
                let Some(cpu) = idle.iter().nth(i) else { break };
                let seq = self.seqs.get(&tid).copied().unwrap_or(0);
                txns.push(Transaction::new(tid, cpu).with_thread_seq(seq));
            }
            ctx.commit(&mut txns);
            for txn in &txns {
                if txn.status.committed() {
                    self.rq.retain(|&t| t != txn.tid);
                }
            }
        }
    }

    let race_seen = Arc::new(Mutex::new(false));
    let policy = BlockedCommitter {
        race_seen: Arc::clone(&race_seen),
        ..Default::default()
    };
    let mut s = setup(EnclaveConfig::centralized("race"), Box::new(policy), 2);
    s.kernel.run_until(60 * MILLIS);

    assert!(
        *race_seen.lock().unwrap(),
        "blocked-commit path never exercised"
    );
    let stats = s.runtime.stats();
    assert!(stats.txns_not_runnable >= 1);
    // Scheduling survived the bad commit.
    for &t in &s.threads {
        let done = s.completions.lock().unwrap().get(&t).copied().unwrap_or(0);
        assert!(done >= 20, "thread {t} progressed only {done} pulses");
    }

    // Trace: the rejected commit shows up as a commit race, pairing and
    // the full invariant suite stay clean (in particular the blocked
    // thread was never switched in).
    assert_eq!(s.sink.dropped(), 0);
    let records = s.sink.snapshot();
    assert!(
        count(&records, |e| matches!(e, TraceEvent::TxnCommitRace { .. })) >= 1,
        "commit-race tracepoint missing"
    );
    let armed = count(&records, |e| matches!(e, TraceEvent::TxnArmed { .. }));
    let ok = count(&records, |e| matches!(e, TraceEvent::TxnCommitOk { .. }));
    assert_eq!(armed, ok, "unpaired transaction arm/commit");
    check::assert_clean(&records);
}
