//! # ghost-chaos — fault injection and schedule-space exploration
//!
//! The paper argues that delegating scheduling to userspace agents is
//! safe because the kernel tolerates agent misbehaviour: message queues
//! overflow and resync, stale transactions fail with `ESTALE`, the
//! watchdog reaps wedged agents, crashes fall back to CFS, and staged
//! policies upgrade in place (§3.1–§3.4). This crate tests those claims
//! adversarially:
//!
//! * [`plan`] — seeded generation of [`ghost_sim::faults::FaultPlan`]s:
//!   agent crashes/hangs/slowdowns, queue overflow windows, IPI
//!   delay/loss, spurious wakeups, clock-skewed ticks, and mid-run
//!   in-place upgrades, all at deterministic virtual times.
//! * [`run`] — runs one `(policy × workload × fault plan × seed)` combo
//!   on the simulated kernel with tracing enabled.
//! * [`oracle`] — judges a finished run: the `ghost-trace` invariant
//!   checker (Tseq/Aseq continuity, commit pairing, occupancy) plus
//!   liveness oracles (no thread starved past the watchdog bound,
//!   fallback-to-CFS completes, the run made progress).
//! * [`shrink`] — greedily minimizes a failing fault plan to a
//!   1-minimal repro.
//! * [`byzantine`] — a seeded adversary issuing hostile ABI call
//!   sequences (forged CPUs/tids/seqnums, commit-after-destroy, queue
//!   misconfiguration, status-word writes) from a co-resident malicious
//!   enclave, judged by never-panic, typed-rejection, and
//!   victim-liveness oracles.
//! * [`repro`] — serializes a combo to `repro.json` and parses it back
//!   for bit-identical deterministic replay.
//! * [`live`] — the same fault plans injected into the `ghost-live`
//!   real-thread backend, judged by wall-clock oracles (grace-windowed
//!   invariants, stranded-worker liveness, bounded wall-clock recovery,
//!   post-recovery reclaim). Live runs are not bit-reproducible, so
//!   failures capture `repro.json` (plan + seed + shape) instead of
//!   shrinking.
//!
//! The `ghost-chaos` binary sweeps N combos across all five evaluation
//! policies and, on failure, writes `repro.json` plus a Chrome trace of
//! the shrunk repro.

pub mod byzantine;
pub mod live;
pub mod oracle;
pub mod plan;
pub mod repro;
pub mod run;
pub mod shrink;

pub use byzantine::{
    generate_byz_ops, run_byzantine, shrink_byzantine, ByzCombo, ByzExperiment, ByzOp, ByzReport,
};
pub use live::{
    generate_live_plan, run_live_combo, LiveCombo, LiveRunReport, LIVE_POLICIES, LIVE_WATCHDOG,
    RECOVERY_WALL_SLO,
};
pub use oracle::Failure;
pub use plan::generate_plan;
pub use repro::{
    byz_from_json, byz_to_json, combo_from_json, combo_to_json, live_from_json, live_to_json,
};
pub use run::{run_combo, Combo, ComboExperiment, PolicyKind, RunReport, WATCHDOG};
pub use shrink::shrink;

// Re-exported so `for_seeds!` works without the caller depending on the
// vendored rand crate or the engine crate directly.
pub use ghost_lab as lab;
pub use rand;

/// Runs `body` once per seeded case, reporting the failing seed on panic.
///
/// `for_seeds!(base, cases, |rng| { ... })` constructs a fresh
/// `StdRng::seed_from_u64(base + case)` for each case. If the body
/// panics, the macro prints the exact seed (so the case can be rerun in
/// isolation) and re-raises the panic.
///
/// # Examples
///
/// ```
/// use ghost_chaos::for_seeds;
/// use ghost_chaos::rand::{rngs::StdRng, Rng};
///
/// let mut cases = 0;
/// for_seeds!(0x5EED, 8, |rng: &mut StdRng| {
///     let x: u64 = rng.gen_range(1..100);
///     assert!(x >= 1);
///     cases += 1;
/// });
/// assert_eq!(cases, 8);
/// ```
#[macro_export]
macro_rules! for_seeds {
    ($base:expr, $cases:expr, $body:expr) => {{
        // Case execution lives in the experiment engine; this macro only
        // adds the per-case RNG construction.
        $crate::lab::run_cases($base, $cases, |seed| {
            let mut rng: $crate::rand::rngs::StdRng =
                $crate::rand::SeedableRng::seed_from_u64(seed);
            #[allow(clippy::redundant_closure_call)]
            ($body)(&mut rng)
        })
    }};
}
