//! HDR-style log-bucketed histogram for latency recording.
//!
//! The histogram trades a small, bounded relative error (one part in
//! `1 << SUB_BUCKET_BITS` ≈ 1.5%) for O(1) recording and a fixed memory
//! footprint, which lets the simulation harnesses record tens of millions
//! of samples without allocation.

/// Number of linear sub-buckets per power-of-two bucket, as a bit count.
///
/// With 6 bits there are 64 sub-buckets per octave, bounding relative
/// quantization error to ~1.6% — well below the run-to-run variance of any
/// experiment in the paper.
const SUB_BUCKET_BITS: u32 = 6;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Number of power-of-two octaves tracked. 2^44 ns ≈ 4.8 hours, far beyond
/// any latency the experiments can produce.
const OCTAVES: usize = 44;

/// The percentiles reported for the Snap experiment (Fig. 7 of the paper).
pub const PERCENTILES_SNAP: [f64; 6] = [50.0, 90.0, 99.0, 99.9, 99.99, 99.999];

/// A named percentile extracted from a [`LogHistogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentile {
    /// Percentile rank in `[0, 100]`.
    pub p: f64,
    /// The value at that rank, in the histogram's unit (nanoseconds).
    pub value: u64,
}

/// Log-bucketed histogram with linear sub-buckets.
///
/// Values are recorded in O(1); percentile queries are O(buckets).
///
/// # Examples
///
/// ```
/// use ghost_metrics::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [100u64, 200, 300, 10_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(50.0) >= 200 && h.percentile(50.0) < 210);
/// assert!(h.max() >= 10_000);
/// ```
#[derive(Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; OCTAVES * SUB_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Maps a value to its bucket index.
    fn index_of(value: u64) -> usize {
        // Values below SUB_BUCKETS land in the first octave with exact
        // (linear) resolution.
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros(); // floor(log2(value)), >= SUB_BUCKET_BITS
        let shift = octave - SUB_BUCKET_BITS;
        let sub = (value >> shift) as usize & (SUB_BUCKETS - 1);
        let oct_index = (octave - SUB_BUCKET_BITS + 1) as usize;
        (oct_index.min(OCTAVES - 1)) * SUB_BUCKETS + sub
    }

    /// Returns a value representative of the bucket (its lower bound).
    fn value_of(index: usize) -> u64 {
        let oct = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if oct == 0 {
            return sub;
        }
        let octave = oct as u32 + SUB_BUCKET_BITS - 1;
        let shift = octave - SUB_BUCKET_BITS;
        ((SUB_BUCKETS as u64) << shift) | (sub << shift)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::index_of(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (bucket-quantized upper estimate is not
    /// applied; the exact max is tracked separately).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded samples, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at percentile `p` in `[0, 100]`.
    ///
    /// Returns 0 for an empty histogram. For `p = 100` this returns the
    /// exact maximum.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p >= 100.0 {
            return self.max;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::value_of(i);
            }
        }
        self.max
    }

    /// Extracts a set of percentiles in one pass-equivalent call.
    pub fn percentiles(&self, ps: &[f64]) -> Vec<Percentile> {
        ps.iter()
            .map(|&p| Percentile {
                p,
                value: self.percentile(p),
            })
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all recorded samples.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        // Sub-SUB_BUCKETS values map to exact linear buckets.
        assert_eq!(h.percentile(100.0), 63);
        assert_eq!(h.min(), 0);
        for v in 0..64u64 {
            assert_eq!(LogHistogram::value_of(LogHistogram::index_of(v)), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LogHistogram::new();
        for shift in 6..40u32 {
            let v = (1u64 << shift) + (1 << (shift - 2));
            h.record(v);
            let q = LogHistogram::value_of(LogHistogram::index_of(v));
            let err = (v as f64 - q as f64).abs() / v as f64;
            assert!(err < 0.016, "v={v} q={q} err={err}");
        }
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LogHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 7 % 100_000 + 1);
        }
        let mut last = 0;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            let v = h.percentile(p);
            assert!(v >= last, "p{p} = {v} < previous {last}");
            last = v;
        }
    }

    #[test]
    fn p100_is_exact_max() {
        let mut h = LogHistogram::new();
        h.record(123_456_789);
        h.record(42);
        assert_eq!(h.percentile(100.0), 123_456_789);
        assert_eq!(h.max(), 123_456_789);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for i in 0..1000u64 {
            let v = i * 131 % 50_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.max(), c.max());
        assert_eq!(a.min(), c.min());
        for p in [50.0, 90.0, 99.0] {
            assert_eq!(a.percentile(p), c.percentile(p));
        }
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record_n(777, 5);
        for _ in 0..5 {
            b.record(777);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.percentile(50.0), b.percentile(50.0));
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = LogHistogram::new();
        h.record(9999);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LogHistogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert_eq!(h.mean(), 20.0);
    }
}
