//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates from a registry, so this crate
//! provides the subset of criterion's API the workspace benches use:
//! [`Criterion`], [`Criterion::benchmark_group`], `bench_function`,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a plain
//! wall-clock mean over a fixed iteration budget — good enough to spot the
//! order-of-magnitude regressions the acceptance criteria care about, with
//! no statistics machinery.

use std::time::{Duration, Instant};

/// Mirrors `criterion::BatchSize`; the stub treats every variant the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Per-benchmark timing driver handed to the closure of `bench_function`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark and prints its mean per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.criterion.run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// No-op; the real crate emits reports here.
    pub fn finish(self) {}
}

/// Top-level harness state, mirroring `criterion::Criterion`.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Small fixed budget: these are micro-benches of sub-microsecond
        // operations, and the stub only needs stable relative numbers.
        Self { iters: 10_000 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
        };
        // Warm-up pass, then the measured pass.
        f(&mut b);
        f(&mut b);
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        println!("{id:<50} {per_iter:>12.1} ns/iter");
    }
}

/// Mirrors `criterion::criterion_group!`: bundles bench fns into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching `criterion::black_box` for benches that import it.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.bench_function("iter", |b| b.iter(|| 1u64 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(stub_group, sample_bench);

    #[test]
    fn group_macro_produces_runner() {
        stub_group();
    }
}
