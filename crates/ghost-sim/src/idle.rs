//! The idle class. It never has runnable threads; a CPU whose higher
//! classes all return `None` from `pick_next` simply idles.

pub use crate::class::NullClass as IdleClass;
