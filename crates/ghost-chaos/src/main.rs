//! The `ghost-chaos` CLI: sweep fault-injected combos across all five
//! evaluation policies, shrink any failure to a minimal repro, and write
//! `repro.json` + a Chrome trace for offline debugging.
//!
//! The sweep runs on the `ghost-lab` parallel experiment engine: each
//! combo is a deterministic single-threaded simulation, so `--jobs N`
//! changes wall-clock time and nothing else — per-combo result hashes
//! (and any repro/trace files) are byte-identical to a serial run. CI
//! diffs the `--digest` output of a `--jobs 1` and a `--jobs 4` run to
//! enforce exactly that. Shrinking happens serially after the sweep,
//! so repro files never depend on worker scheduling either.
//!
//! ```text
//! cargo run -p ghost-chaos -- --combos 64           # the CI smoke sweep
//! cargo run -p ghost-chaos -- --combos 64 --jobs 4  # same results, faster
//! cargo run -p ghost-chaos -- --policy shinjuku     # one policy only
//! cargo run -p ghost-chaos -- --replay repro.json   # deterministic replay
//! ```

use ghost_chaos::repro::{is_byzantine_repro, is_live_repro};
use ghost_chaos::{
    byz_from_json, byz_to_json, combo_from_json, combo_to_json, live_from_json, live_to_json,
    run_byzantine, run_combo, run_live_combo, shrink, shrink_byzantine, ByzCombo, ByzExperiment,
    Combo, ComboExperiment, LiveCombo, PolicyKind, LIVE_POLICIES,
};
use ghost_lab::bench::{merged_bench_json, BenchRow};
use ghost_lab::{run_sweep, Cache};
use std::process::ExitCode;
use std::time::Instant;

struct Opts {
    combos: Option<u64>,
    seed_base: u64,
    out_dir: String,
    policy: Option<PolicyKind>,
    replay: Option<String>,
    recovery: bool,
    byzantine: bool,
    live: bool,
    bench_out: Option<String>,
    jobs: usize,
    cache: Option<String>,
    digest: Option<String>,
}

impl Opts {
    /// Sweep size: 64 for simulated sweeps, 6 for `--live` (real
    /// threads, real time — one crash/hang/slow rotation per policy)
    /// unless `--combos` says otherwise.
    fn combos(&self) -> u64 {
        self.combos.unwrap_or(if self.live { 6 } else { 64 })
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ghost-chaos [--combos N] [--seed-base S] [--out DIR] [--policy NAME] \
         [--replay FILE] [--jobs N] [--cache DIR] [--digest FILE]\n\
         \n\
         Sweeps N (policy x workload x fault-plan x seed) combos through the\n\
         simulated ghOSt runtime. Failing combos are shrunk to a minimal fault\n\
         plan; DIR receives repro-<i>.json plus trace-<i>.json (Chrome format).\n\
         \n\
         --combos N      number of combos to run (default 64; 6 with --live)\n\
         --seed-base S   first seed (default 1)\n\
         --out DIR       output directory for repros (default chaos-out)\n\
         --policy NAME   restrict to one policy: {}\n\
         --replay FILE   replay one repro.json instead of sweeping\n\
         --recovery      recovery sweep: every plan crashes an agent or\n\
                         upgrades in place; odd crash seeds arm a hot\n\
                         standby judged by the bounded-recovery oracle\n\
         --byzantine     byzantine sweep: each combo runs a seeded hostile\n\
                         ABI call sequence from a co-resident malicious\n\
                         enclave, judged by the never-panic,\n\
                         typed-rejection, and victim-liveness oracles\n\
         --live          live sweep: inject crash/hang/slow plans into the\n\
                         ghost-live real-thread backend, judged by\n\
                         wall-clock oracles (grace-windowed invariants,\n\
                         stranded workers, recovery within 1 s); failures\n\
                         capture repro.json without shrinking\n\
         --bench-out F   (--live) write/merge measured recovery-time and\n\
                         shed-rate rows into bench JSON file F\n\
         --jobs N        worker threads for the sweep (default 1); results\n\
                         are byte-identical for every N\n\
         --cache DIR     ghost-lab result cache: unchanged combos are not\n\
                         re-simulated\n\
         --digest FILE   write 'label hash' lines for serial-vs-parallel\n\
                         comparison",
        PolicyKind::ALL
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        combos: None,
        seed_base: 1,
        out_dir: "chaos-out".to_string(),
        policy: None,
        replay: None,
        recovery: false,
        byzantine: false,
        live: false,
        bench_out: None,
        jobs: 1,
        cache: None,
        digest: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--combos" => {
                opts.combos = Some(value("--combos").parse().unwrap_or_else(|_| usage()));
            }
            "--seed-base" => {
                opts.seed_base = value("--seed-base").parse().unwrap_or_else(|_| usage());
            }
            "--out" => opts.out_dir = value("--out"),
            "--policy" => {
                let name = value("--policy");
                opts.policy = Some(PolicyKind::from_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown policy '{name}'");
                    usage()
                }));
            }
            "--replay" => opts.replay = Some(value("--replay")),
            "--recovery" => opts.recovery = true,
            "--byzantine" => opts.byzantine = true,
            "--live" => opts.live = true,
            "--bench-out" => opts.bench_out = Some(value("--bench-out")),
            "--jobs" => opts.jobs = value("--jobs").parse().unwrap_or_else(|_| usage()),
            "--cache" => opts.cache = Some(value("--cache")),
            "--digest" => opts.digest = Some(value("--digest")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    opts
}

fn replay_byzantine(path: &str, doc: &str) -> ExitCode {
    let combo = match byz_from_json(doc) {
        Ok(combo) => combo,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {path}: byzantine victim={} seed={} ops={}",
        combo.victim.name(),
        combo.seed,
        combo.ops.len()
    );
    let report = run_byzantine(&combo);
    println!(
        "  victim_completions={} hostile_rejected={} abi_rejects={} quarantined={}",
        report.victim_completions,
        report.hostile_rejected,
        report.stats.abi_rejects_total(),
        report.quarantined
    );
    if report.failures.is_empty() {
        println!("  PASS: all oracles clean");
        ExitCode::SUCCESS
    } else {
        for f in &report.failures {
            println!("  FAIL {f}");
        }
        ExitCode::FAILURE
    }
}

fn replay_live(path: &str, doc: &str) -> ExitCode {
    let combo = match live_from_json(doc) {
        Ok(combo) => combo,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {path}: live policy={} seed={} faults={} (wall-clock; \
         plan replays exactly, interleaving is best-effort)",
        combo.policy.name(),
        combo.seed,
        combo.plan.events.len()
    );
    let report = run_live_combo(&combo);
    println!(
        "  completed={} shed={} failed={} respawns={} reconstructions={} recovery={}",
        report.completed,
        report.shed,
        report.failed,
        report.stats.respawns,
        report.stats.reconstructions,
        report
            .recovery_wall_ns
            .map(|ns| format!("{:.1} ms", ns as f64 / 1e6))
            .unwrap_or_else(|| "-".into()),
    );
    if report.failures.is_empty() {
        println!("  PASS: all oracles clean");
        ExitCode::SUCCESS
    } else {
        for f in &report.failures {
            println!("  FAIL {f}");
        }
        ExitCode::FAILURE
    }
}

fn replay(path: &str) -> ExitCode {
    let doc = match std::fs::read_to_string(path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if is_byzantine_repro(&doc) {
        return replay_byzantine(path, &doc);
    }
    if is_live_repro(&doc) {
        return replay_live(path, &doc);
    }
    let combo = match combo_from_json(&doc) {
        Ok(combo) => combo,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {path}: policy={} seed={} faults={}",
        combo.policy.name(),
        combo.seed,
        combo.plan.events.len()
    );
    let report = run_combo(&combo);
    println!(
        "  completions={} txns={} watchdog_destroys={} upgrades={}",
        report.completions,
        report.stats.txns_committed,
        report.stats.watchdog_destroys,
        report.stats.upgrades
    );
    if report.failures.is_empty() {
        println!("  PASS: all oracles clean");
        ExitCode::SUCCESS
    } else {
        for f in &report.failures {
            println!("  FAIL {f}");
        }
        ExitCode::FAILURE
    }
}

fn open_cache(dir: Option<&String>) -> Result<Option<Cache>, ExitCode> {
    match dir {
        Some(dir) => match Cache::open(dir) {
            Ok(c) => Ok(Some(c)),
            Err(e) => {
                eprintln!("cannot open cache {dir}: {e}");
                Err(ExitCode::from(2))
            }
        },
        None => Ok(None),
    }
}

fn write_byz_repro(out_dir: &str, index: u64, combo: &ByzCombo) {
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        return;
    }
    let repro_path = format!("{out_dir}/repro-{index}.json");
    let trace_path = format!("{out_dir}/trace-{index}.json");
    if let Err(e) = std::fs::write(&repro_path, byz_to_json(combo)) {
        eprintln!("cannot write {repro_path}: {e}");
    }
    // Re-run the shrunk combo to capture the trace of the minimal repro.
    let report = run_byzantine(combo);
    if let Err(e) = std::fs::write(&trace_path, ghost_trace::chrome::export(&report.records)) {
        eprintln!("cannot write {trace_path}: {e}");
    }
    println!("  wrote {repro_path} and {trace_path}");
}

// Byzantine sweep: hostile ABI call sequences from a co-resident
// malicious enclave, rotated over the victim policies. Failing combos
// shrink to a 1-minimal op sequence, serially, like the fault sweep.
fn byzantine_sweep(opts: &Opts) -> ExitCode {
    let victims: Vec<PolicyKind> = match opts.policy {
        Some(p) if ByzCombo::VICTIMS.contains(&p) => vec![p],
        Some(p) => {
            eprintln!(
                "policy '{}' cannot be a byzantine victim (it cannot co-reside \
                 with the hostile enclave)",
                p.name()
            );
            return ExitCode::from(2);
        }
        None => ByzCombo::VICTIMS.to_vec(),
    };
    let exps: Vec<ByzExperiment> = (0..opts.combos())
        .map(|i| {
            let victim = victims[(i % victims.len() as u64) as usize];
            ByzExperiment(ByzCombo::generated(victim, opts.seed_base + i))
        })
        .collect();
    let cache = match open_cache(opts.cache.as_ref()) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let started = Instant::now();
    let report = run_sweep(&exps, opts.jobs, cache.as_ref());
    let elapsed = started.elapsed();
    let mut failed = 0u64;
    for (i, item) in report.items.iter().enumerate() {
        if item.result.pass {
            continue;
        }
        failed += 1;
        let combo = &exps[i].0;
        println!(
            "combo {i}: byzantine victim={} seed={} ops={} FAILED:",
            combo.victim.name(),
            combo.seed,
            combo.ops.len()
        );
        for line in item.result.lines.iter() {
            if let Some(f) = line.strip_prefix("failure ") {
                println!("  {f}");
            }
        }
        let minimal = shrink_byzantine(combo);
        println!(
            "  shrunk op sequence: {} -> {} op(s)",
            combo.ops.len(),
            minimal.ops.len()
        );
        write_byz_repro(&opts.out_dir, i as u64, &minimal);
    }
    println!(
        "swept {} byzantine combos across {} victim(s) with {} job(s) in {:.2?} \
         ({} executed, {} cached): {} failed",
        opts.combos(),
        victims.len(),
        opts.jobs,
        elapsed,
        report.executed,
        report.cached,
        failed
    );
    if let Some(path) = &opts.digest {
        if let Err(e) = std::fs::write(path, report.digest()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote digest to {path}");
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write_live_repro(
    out_dir: &str,
    index: u64,
    combo: &LiveCombo,
    records: &[ghost_trace::TraceRecord],
) {
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        return;
    }
    let repro_path = format!("{out_dir}/repro-{index}.json");
    let trace_path = format!("{out_dir}/trace-{index}.json");
    if let Err(e) = std::fs::write(&repro_path, live_to_json(combo)) {
        eprintln!("cannot write {repro_path}: {e}");
    }
    // Live runs are not replayed for the trace: export the failing
    // run's own recording (re-running would observe a different
    // interleaving).
    if let Err(e) = std::fs::write(&trace_path, ghost_trace::chrome::export(records)) {
        eprintln!("cannot write {trace_path}: {e}");
    }
    println!("  wrote {repro_path} and {trace_path}");
}

// Live sweep: wall-clock fault injection on the real-thread backend.
// Serial on purpose — combos run real OS threads and would contend for
// cores — and unshrunk on purpose: re-running a live combo observes a
// different interleaving, so a failure captures its plan and its trace.
fn live_sweep(opts: &Opts) -> ExitCode {
    let policies: Vec<PolicyKind> = match opts.policy {
        Some(p) if LIVE_POLICIES.contains(&p) => vec![p],
        Some(p) => {
            eprintln!(
                "policy '{}' has no live sweep (only centralized-fifo and per-cpu \
                 run on the real-thread backend)",
                p.name()
            );
            return ExitCode::from(2);
        }
        None => LIVE_POLICIES.to_vec(),
    };
    let combos = opts.combos();
    let started = Instant::now();
    let mut failed = 0u64;
    let mut recovery_rows: Vec<BenchRow> = Vec::new();
    let mut shed_total = 0u64;
    let mut shed_wall: u128 = 0;
    for i in 0..combos {
        let policy = policies[(i % policies.len() as u64) as usize];
        let combo = LiveCombo::generated(policy, opts.seed_base + i);
        let kinds: Vec<&str> = combo
            .plan
            .events
            .iter()
            .map(|fe| fe.kind.name())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let report = run_live_combo(&combo);
        println!(
            "combo {i}: live policy={} seed={} fault={} completed={} shed={} failed={} \
             recovery={} wall={:.2} s{}",
            policy.name(),
            combo.seed,
            kinds.join("+"),
            report.completed,
            report.shed,
            report.failed,
            report
                .recovery_wall_ns
                .map(|ns| format!("{:.1} ms", ns as f64 / 1e6))
                .unwrap_or_else(|| "-".into()),
            report.wall_ns as f64 / 1e9,
            if report.failures.is_empty() {
                ""
            } else {
                " FAILED:"
            },
        );
        if let Some(ns) = report.recovery_wall_ns {
            recovery_rows.push(BenchRow {
                name: format!("chaos-recovery-{}", policy.name()),
                backend: "live",
                wall_ns: ns as u128,
                sim_ns: None,
                work_items: report.stats.respawns,
            });
        }
        shed_total += report.shed;
        shed_wall += report.wall_ns;
        if !report.failures.is_empty() {
            failed += 1;
            for f in &report.failures {
                println!("  {f}");
            }
            write_live_repro(&opts.out_dir, i, &combo, &report.records);
        }
    }
    println!(
        "swept {combos} live combos across {} policies in {:.2?}: {failed} failed",
        policies.len(),
        started.elapsed(),
    );
    if let Some(path) = &opts.bench_out {
        let mut rows = recovery_rows;
        rows.push(BenchRow {
            name: "chaos-degraded-shed".into(),
            backend: "live",
            wall_ns: shed_wall.max(1),
            sim_ns: None,
            work_items: shed_total,
        });
        let existing = std::fs::read_to_string(path).ok();
        match std::fs::write(path, merged_bench_json(existing.as_deref(), &rows)) {
            Ok(()) => println!("wrote {} bench row(s) to {path}", rows.len()),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write_repro(out_dir: &str, index: u64, combo: &Combo) {
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        return;
    }
    let repro_path = format!("{out_dir}/repro-{index}.json");
    let trace_path = format!("{out_dir}/trace-{index}.json");
    if let Err(e) = std::fs::write(&repro_path, combo_to_json(combo)) {
        eprintln!("cannot write {repro_path}: {e}");
    }
    // Re-run the shrunk combo to capture the trace of the minimal repro.
    let report = run_combo(combo);
    if let Err(e) = std::fs::write(&trace_path, ghost_trace::chrome::export(&report.records)) {
        eprintln!("cannot write {trace_path}: {e}");
    }
    println!("  wrote {repro_path} and {trace_path}");
}

fn main() -> ExitCode {
    let opts = parse_opts();
    if let Some(path) = &opts.replay {
        return replay(path);
    }
    if opts.byzantine {
        return byzantine_sweep(&opts);
    }
    if opts.live {
        return live_sweep(&opts);
    }

    let policies: Vec<PolicyKind> = match opts.policy {
        Some(p) => vec![p],
        None => PolicyKind::ALL.to_vec(),
    };
    let exps: Vec<ComboExperiment> = (0..opts.combos())
        .map(|i| {
            let policy = policies[(i % policies.len() as u64) as usize];
            let seed = opts.seed_base + i;
            ComboExperiment(if opts.recovery {
                Combo::generated_recovery(policy, seed)
            } else {
                Combo::generated(policy, seed)
            })
        })
        .collect();

    let cache = match open_cache(opts.cache.as_ref()) {
        Ok(c) => c,
        Err(code) => return code,
    };

    let started = Instant::now();
    let report = run_sweep(&exps, opts.jobs, cache.as_ref());
    let elapsed = started.elapsed();

    // Failing combos are shrunk serially, after the parallel sweep, so
    // repro files are independent of worker count and scheduling.
    let mut failed = 0u64;
    let mut per_policy = vec![0u64; policies.len()];
    for (i, item) in report.items.iter().enumerate() {
        if item.result.pass {
            per_policy[i % policies.len()] += 1;
            continue;
        }
        failed += 1;
        let combo = &exps[i].0;
        println!(
            "combo {i}: policy={} seed={} faults={} FAILED:",
            combo.policy.name(),
            combo.seed,
            combo.plan.events.len()
        );
        for line in item.result.lines.iter() {
            if let Some(f) = line.strip_prefix("failure ") {
                println!("  {f}");
            }
        }
        let minimal = shrink(combo);
        println!(
            "  shrunk fault plan: {} -> {} event(s)",
            combo.plan.events.len(),
            minimal.plan.events.len()
        );
        write_repro(&opts.out_dir, i as u64, &minimal);
    }
    println!(
        "swept {} combos across {} policies with {} job(s) in {:.2?} \
         ({} executed, {} cached): {} failed",
        opts.combos(),
        policies.len(),
        opts.jobs,
        elapsed,
        report.executed,
        report.cached,
        failed
    );
    for (j, p) in policies.iter().enumerate() {
        println!("  {:>16}: {} clean", p.name(), per_policy[j]);
    }
    if let Some(path) = &opts.digest {
        if let Err(e) = std::fs::write(path, report.digest()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote digest to {path}");
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
