//! Open-loop arrival processes and service-time distributions.

use ghost_sim::time::Nanos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Poisson arrival process with exponentially distributed gaps.
///
/// # Examples
///
/// ```
/// use ghost_workloads::Poisson;
///
/// let mut p = Poisson::new(100_000.0, 42); // 100k arrivals/s.
/// let t1 = p.next_after(0);
/// let t2 = p.next_after(t1);
/// assert!(t2 > t1);
/// ```
pub struct Poisson {
    rng: StdRng,
    /// Mean gap between arrivals, ns.
    mean_gap: f64,
}

impl Poisson {
    /// Creates a process with `rate` arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        Self {
            rng: StdRng::seed_from_u64(seed),
            mean_gap: 1e9 / rate,
        }
    }

    /// The next arrival time strictly after `now`.
    pub fn next_after(&mut self, now: Nanos) -> Nanos {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap = (-u.ln() * self.mean_gap).max(1.0);
        now + gap as Nanos
    }

    /// Generates all arrivals in `[0, horizon)` as a sorted vector.
    pub fn generate(&mut self, horizon: Nanos) -> Vec<Nanos> {
        let mut out = Vec::new();
        let mut t = self.next_after(0);
        while t < horizon {
            out.push(t);
            t = self.next_after(t);
        }
        out
    }
}

/// Service-time distributions used in the paper's experiments.
#[derive(Debug, Clone)]
pub enum ServiceDist {
    /// Constant service time.
    Fixed(Nanos),
    /// Two-point distribution: with probability `p_long`, `long`;
    /// otherwise `short`. The §4.2 dispersive workload is
    /// `Bimodal { short: 4 µs, long: 10 ms, p_long: 0.005 }`.
    Bimodal {
        /// Common-case service time.
        short: Nanos,
        /// Rare long service time.
        long: Nanos,
        /// Probability of the long case.
        p_long: f64,
    },
    /// Exponential with the given mean.
    Exponential(Nanos),
    /// Uniform in `[lo, hi]`.
    Uniform(Nanos, Nanos),
}

impl ServiceDist {
    /// Samples one service time.
    pub fn sample(&self, rng: &mut StdRng) -> Nanos {
        match *self {
            ServiceDist::Fixed(v) => v,
            ServiceDist::Bimodal {
                short,
                long,
                p_long,
            } => {
                if rng.gen_bool(p_long) {
                    long
                } else {
                    short
                }
            }
            ServiceDist::Exponential(mean) => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                ((-u.ln()) * mean as f64).max(1.0) as Nanos
            }
            ServiceDist::Uniform(lo, hi) => rng.gen_range(lo..=hi),
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            ServiceDist::Fixed(v) => v as f64,
            ServiceDist::Bimodal {
                short,
                long,
                p_long,
            } => short as f64 * (1.0 - p_long) + long as f64 * p_long,
            ServiceDist::Exponential(mean) => mean as f64,
            ServiceDist::Uniform(lo, hi) => (lo + hi) as f64 / 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_respected() {
        let mut p = Poisson::new(1_000_000.0, 7); // 1M/s → mean gap 1 µs.
        let arrivals = p.generate(100_000_000); // 100 ms.
        let n = arrivals.len() as f64;
        assert!((90_000.0..110_000.0).contains(&n), "n = {n}");
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = Poisson::new(0.0, 1);
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = Poisson::new(10_000.0, 9).generate(10_000_000);
        let b = Poisson::new(10_000.0, 9).generate(10_000_000);
        assert_eq!(a, b);
    }

    #[test]
    fn bimodal_matches_probabilities() {
        let d = ServiceDist::Bimodal {
            short: 4_000,
            long: 10_000_000,
            p_long: 0.005,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let longs = (0..n).filter(|_| d.sample(&mut rng) == 10_000_000).count() as f64;
        let frac = longs / n as f64;
        assert!((0.003..0.007).contains(&frac), "long fraction {frac}");
        // Mean: 0.995·4 µs + 0.005·10 ms ≈ 53.98 µs.
        assert!((d.mean() - 53_980.0).abs() < 1.0);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = ServiceDist::Exponential(10_000);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((9_800.0..10_200.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let d = ServiceDist::Uniform(100, 200);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((100..=200).contains(&v));
        }
    }
}
