//! `--live` sweep: the same deterministic fault plans, injected into
//! the real-thread backend and judged by wall-clock oracles.
//!
//! A [`LiveCombo`] mirrors [`crate::run::Combo`] for `ghost-live`: the
//! plan is still a [`FaultPlan`] (one type, both backends), but `at` and
//! `dur` are read against the monotonic wall clock, the workload is the
//! closed-loop KV service, and the run takes real time on real OS
//! threads. That changes what the harness can promise: a live run is
//! *not* bit-reproducible, so there is no shrinking — a failing combo is
//! captured as `repro.json` (plan + seed + shape) for best-effort replay
//! plus the full trace for offline reading.
//!
//! The oracles are the live analogues of [`crate::oracle`]:
//!
//! * **trace-invariant** — the `ghost-trace` checker with the shared
//!   [`LIVE_GRACE_NS`] window for host-scheduler jitter.
//! * **live-stranded** — at end of run no workload thread may be left
//!   runnable in the ghOSt class with nobody scheduled to run it.
//! * **recovery** / **recovery-slo** — crash combos must respawn and
//!   reconstruct (§3.4), and the measured wall-clock gap from
//!   `RecoveryStart` to `ReconstructDone` must fit
//!   [`RECOVERY_WALL_SLO`].
//! * **recovery-reclaim** — after a survived recovery no thread stays
//!   on the transient CFS excursion (unless the commit governor shed it
//!   deliberately).
//! * **progress** / **live-timeout** — the KV loop completed, and every
//!   admitted request terminated as completed, shed, or failed.

use crate::oracle::Failure;
use ghost_core::StandbyConfig;
use ghost_live::{DegradedLimits, KvService, LiveConfig, LiveKernel, LiveStats};
use ghost_sim::faults::{FaultEvent, FaultKind, FaultPlan};
use ghost_sim::thread::{ThreadKind, ThreadState};
use ghost_sim::time::{Nanos, MICROS, MILLIS, SECS};
use ghost_sim::topology::CpuId;
use ghost_sim::{CpuSet, CLASS_CFS, CLASS_GHOST};
use ghost_trace::check::{self, LIVE_GRACE_NS};
use ghost_trace::{TraceEvent, TraceRecord, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use ghost_lab::scenario::PolicyKind;

/// Policies swept on the live backend. Kept to the two agent models
/// (centralized, per-CPU) — the other evaluation policies add scheduling
/// flavour, not new recovery machinery, and live combos cost real
/// wall-clock time.
pub const LIVE_POLICIES: [PolicyKind; 2] = [PolicyKind::CentralizedFifo, PolicyKind::PerCpu];

/// Per-request service-time floor for the live KV workload.
pub const LIVE_SERVICE_NS: u64 = 2 * MICROS;

/// Wall-clock bound from `RecoveryStart` to `ReconstructDone` for a
/// crashed agent: detection is immediate (the dying thread's own
/// teardown hook), the respawn backoff contributes ~100 ms, and the
/// status-word scan is microseconds — measured runs land around 105 ms,
/// so one second is a full order of magnitude of headroom.
pub const RECOVERY_WALL_SLO: Nanos = SECS;

/// Watchdog for live enclaves: longer than any injected hang (so a hang
/// stalls instead of destroying the enclave) but short enough that a
/// genuinely wedged run still gets reaped inside the supervise deadline.
pub const LIVE_WATCHDOG: Nanos = 2 * SECS;

/// One point of the live sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveCombo {
    /// Policy under test (one of [`LIVE_POLICIES`]).
    pub policy: PolicyKind,
    /// Seed for the fault plan (and the sweep's bookkeeping).
    pub seed: u64,
    /// Fault schedule, with `at`/`dur` in wall-clock nanoseconds.
    pub plan: FaultPlan,
    /// Closed-loop KV requests to complete (or shed/fail) before the
    /// run ends.
    pub requests: u64,
    /// Worker CPUs (and worker threads) the live kernel manages.
    pub cpus: usize,
}

impl LiveCombo {
    /// The sweep's combo for `(policy, seed)`: standard shape, fault
    /// plan derived from the seed by [`generate_live_plan`].
    pub fn generated(policy: PolicyKind, seed: u64) -> Self {
        let cpus = 2;
        let targets: Vec<CpuId> = (0..cpus as u16).map(CpuId).collect();
        Self {
            policy,
            seed,
            plan: generate_live_plan(seed, &targets),
            requests: 60_000,
            cpus,
        }
    }

    /// True if the plan kills an agent (arming the standby machinery).
    pub fn injects_crash(&self) -> bool {
        self.plan
            .events
            .iter()
            .any(|fe| matches!(fe.kind, FaultKind::AgentCrash { .. }))
    }
}

/// Generates the live fault plan for `seed`: a deterministic rotation
/// over the three wall-clock-meaningful agent faults, with times scaled
/// to real milliseconds.
///
/// * `seed % 3 == 0` — one `AgentCrash` on `cpus[0]` (the centralized
///   global agent's pin, and per-CPU agent 0), mid-run.
/// * `seed % 3 == 1` — an `AgentHang` window on every CPU, 100–200 ms.
/// * `seed % 3 == 2` — an `AgentSlow` window on every CPU covering the
///   whole run.
///
/// Same `(seed, cpus)`, same plan — the plan side of a live repro is
/// exactly reproducible even though the run itself is wall-clock.
pub fn generate_live_plan(seed: u64, cpus: &[CpuId]) -> FaultPlan {
    assert!(!cpus.is_empty(), "fault plans need at least one target CPU");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x11FE_CA05);
    let at = rng.gen_range(50 * MILLIS..100 * MILLIS);
    let mut events = Vec::new();
    match seed % 3 {
        0 => events.push(FaultEvent {
            at,
            kind: FaultKind::AgentCrash { cpu: cpus[0] },
        }),
        1 => {
            let dur = rng.gen_range(100 * MILLIS..200 * MILLIS);
            for &cpu in cpus {
                events.push(FaultEvent {
                    at,
                    kind: FaultKind::AgentHang { cpu, dur },
                });
            }
        }
        _ => {
            let factor = rng.gen_range(8u32..=32);
            for &cpu in cpus {
                events.push(FaultEvent {
                    at: 0,
                    kind: FaultKind::AgentSlow {
                        cpu,
                        dur: 30 * SECS,
                        factor,
                    },
                });
            }
        }
    }
    FaultPlan { events }
}

/// Everything a finished live run exposes to the CLI and tests.
pub struct LiveRunReport {
    /// Oracle verdicts; empty means the run survived its fault plan.
    pub failures: Vec<Failure>,
    /// KV requests completed / shed at admission / failed after retries.
    pub completed: u64,
    pub shed: u64,
    pub failed: u64,
    /// Runtime counters (respawns, reconstructions, drops, ...).
    pub stats: ghost_core::runtime::GhostStats,
    /// Backend counters (IPIs lost/delayed, injected faults, stall time).
    pub live: LiveStats,
    /// Measured wall-clock `RecoveryStart` → `ReconstructDone` gap, when
    /// the run recovered from a crash.
    pub recovery_wall_ns: Option<Nanos>,
    /// Wall-clock duration of the whole run.
    pub wall_ns: u128,
    /// The recorded trace (for Chrome export of failing runs).
    pub records: Vec<TraceRecord>,
}

/// Measured `RecoveryStart` → first subsequent `ReconstructDone` gap.
fn recovery_wall(records: &[TraceRecord]) -> Option<Nanos> {
    let start = records
        .iter()
        .find(|r| matches!(r.event, TraceEvent::RecoveryStart { .. }))
        .map(|r| r.ts)?;
    records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::ReconstructDone { .. }))
        .map(|r| r.ts)
        .find(|&done| done >= start)
        .map(|done| done - start)
}

/// Runs `combo` on the live backend and evaluates the wall-clock
/// oracles. Takes real time (roughly the fault windows plus the KV
/// service time); the verdict — not the timing — is what repeats.
pub fn run_live_combo(combo: &LiveCombo) -> LiveRunReport {
    let started = Instant::now();
    let sink = TraceSink::recording(combo.cpus, 1 << 20);
    let kernel = LiveKernel::new(LiveConfig {
        cpus: combo.cpus,
        trace: sink.clone(),
        faults: combo.plan.clone(),
        ..LiveConfig::default()
    });
    let crash = combo.injects_crash();
    let mut config = combo
        .policy
        .enclave_config(&format!("chaos-live-{}", combo.seed))
        .with_watchdog(LIVE_WATCHDOG);
    if crash {
        config = config.with_standby(StandbyConfig {
            max_respawns: 3,
            respawn_backoff: 100 * MILLIS,
            recovery_slo: RECOVERY_WALL_SLO,
        });
    }
    let enclave = kernel.launch_enclave(CpuSet::first_n(combo.cpus), config, combo.policy.build());
    if crash {
        let policy = combo.policy;
        enclave.set_standby_policy(move || policy.build());
    }

    let kv = KvService::with_limits(
        16,
        LIVE_SERVICE_NS,
        DegradedLimits {
            request_timeout: 50 * MILLIS,
            max_retries: 3,
            retry_backoff: MILLIS,
            shed_depth: 2,
        },
    );
    let workers: Vec<_> = (0..combo.cpus)
        .map(|i| kernel.spawn_kv_worker(&format!("chaos-kv-{i}"), Arc::clone(&kv)))
        .collect();
    for &tid in &workers {
        kernel.attach(&enclave, tid);
    }
    kv.start_closed_loop(combo.requests, 2 * workers.len() as u64, kernel.now());
    for &tid in &workers {
        kernel.wake(tid);
    }

    let mut failures = Vec::new();
    let eid = enclave.id();

    // Supervise: mirror degraded mode into the KV service (load
    // shedding while the enclave is in failover), pump retry backoffs,
    // and kick blocked workers — until every admitted request has
    // terminated or the deadline passes.
    let deadline = Instant::now() + Duration::from_secs(60);
    while kv.accounted_count() < combo.requests {
        if Instant::now() > deadline {
            failures.push(Failure {
                oracle: "live-timeout",
                detail: format!(
                    "closed loop stalled at {}/{} accounted requests",
                    kv.accounted_count(),
                    combo.requests
                ),
            });
            break;
        }
        kv.set_degraded(kernel.runtime().enclave_degraded(eid));
        kv.pump_delayed(kernel.now());
        if kv.depth() > 0 {
            kernel.wake_one_blocked(&workers);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    kv.set_degraded(false);

    // Crash combos: wait for the §3.4 machinery to finish before
    // judging — the respawned agent must reconstruct and reclaim even
    // if the workload already drained on the surviving lanes.
    if crash {
        let rescue = Instant::now() + Duration::from_secs(10);
        loop {
            let stats = kernel.runtime().stats();
            if stats.recoveries >= 1 || Instant::now() > rescue || !enclave.alive() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    let stats = kernel.runtime().stats();
    let records = sink.snapshot();
    let recovery_wall_ns = recovery_wall(&records);

    if sink.dropped() > 0 {
        failures.push(Failure {
            oracle: "trace-lossless",
            detail: format!(
                "trace ring dropped {} records; grow the capacity",
                sink.dropped()
            ),
        });
    }
    for v in check::check_with_grace(&records, LIVE_GRACE_NS) {
        failures.push(Failure {
            oracle: "trace-invariant",
            detail: v.to_string(),
        });
    }
    if kv.completed_count() == 0 {
        failures.push(Failure {
            oracle: "progress",
            detail: "no KV request completed over the whole run".to_string(),
        });
    }

    // Liveness: nobody left stranded. A workload thread still runnable
    // in the ghOSt class at end of run has an agent that never came
    // back for it.
    for (tid, th) in kernel.thread_snapshots() {
        if th.kind == ThreadKind::Workload
            && th.state == ThreadState::Runnable
            && th.class == CLASS_GHOST
        {
            failures.push(Failure {
                oracle: "live-stranded",
                detail: format!("thread {tid} left runnable in the ghOSt class at end of run"),
            });
        }
    }

    if crash {
        if stats.respawns < 1 || stats.reconstructions < 1 || !enclave.alive() {
            failures.push(Failure {
                oracle: "recovery",
                detail: format!(
                    "crash not recovered: respawns={} reconstructions={} alive={}",
                    stats.respawns,
                    stats.reconstructions,
                    enclave.alive()
                ),
            });
        }
        match recovery_wall_ns {
            Some(gap) if gap > RECOVERY_WALL_SLO => failures.push(Failure {
                oracle: "recovery-slo",
                detail: format!("wall-clock recovery took {gap} ns (SLO {RECOVERY_WALL_SLO} ns)"),
            }),
            None if enclave.alive() => failures.push(Failure {
                oracle: "recovery-slo",
                detail: "crash combo recorded no RecoveryStart/ReconstructDone pair".to_string(),
            }),
            _ => {}
        }
        // Re-absorption after the transient CFS excursion (threads the
        // commit governor shed deliberately are exempt).
        if enclave.alive() && stats.estale_sheds == 0 {
            for (tid, th) in kernel.thread_snapshots() {
                if th.kind == ThreadKind::Workload
                    && th.state != ThreadState::Dead
                    && th.class == CLASS_CFS
                {
                    failures.push(Failure {
                        oracle: "recovery-reclaim",
                        detail: format!(
                            "thread {tid} still under CFS after degraded-mode recovery"
                        ),
                    });
                }
            }
        }
    }

    let degraded = kv.degraded_stats();
    let live = kernel.stats();
    kernel.shutdown();
    LiveRunReport {
        failures,
        completed: kv.completed_count(),
        shed: degraded.shed,
        failed: degraded.failed,
        stats,
        live,
        recovery_wall_ns,
        wall_ns: started.elapsed().as_nanos(),
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_plans_are_deterministic_and_rotated() {
        let cpus: Vec<CpuId> = (0..2u16).map(CpuId).collect();
        for seed in 0..12 {
            let a = generate_live_plan(seed, &cpus);
            let b = generate_live_plan(seed, &cpus);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert!(!a.events.is_empty());
            let expect_crash = seed % 3 == 0;
            assert_eq!(
                a.events
                    .iter()
                    .any(|fe| matches!(fe.kind, FaultKind::AgentCrash { .. })),
                expect_crash,
                "seed {seed} rotation broken"
            );
        }
    }

    #[test]
    fn generated_combos_mark_crashes() {
        let crash = LiveCombo::generated(PolicyKind::CentralizedFifo, 3);
        assert!(crash.injects_crash());
        let hang = LiveCombo::generated(PolicyKind::PerCpu, 4);
        assert!(!hang.injects_crash());
    }
}
