//! Fig. 6: comparison to custom centralized schedulers (§4.2).
//!
//! * (a) 99th-percentile latency vs. RocksDB throughput for Shinjuku,
//!   ghOSt-Shinjuku, and CFS-Shinjuku on the dispersive workload.
//! * (b) the same with a co-located batch app.
//! * (c) the batch app's CPU share under each system.
//!
//! Shape assertions: ghOSt stays close to Shinjuku (within ~15% of its
//! saturation point, paper: 5%), CFS saturates much earlier (paper:
//! ~30% sooner), the batch app gets ~0 CPU under Shinjuku but real CPU
//! under ghOSt+Shenango, and ghOSt's tails stay intact next to the
//! batch app.

use ghost_bench::fig6::{self, System};
use ghost_metrics::Table;

/// A system saturates at the highest offered load where it still serves
/// >97% of the offered rate with p99 below 1.5 ms (the paper's y-range).
fn saturation(points: &[(f64, fig6::Fig6Point)]) -> f64 {
    points
        .iter()
        .filter(|(offered, p)| p.achieved > 0.97 * offered && p.p99_us < 1_500.0)
        .map(|(offered, _)| *offered)
        .fold(0.0, f64::max)
}

fn main() {
    let loads = fig6::load_sweep();

    // --- Fig. 6a: single workload. ---
    let mut results: Vec<(System, Vec<(f64, fig6::Fig6Point)>)> = Vec::new();
    for sys in [System::Shinjuku, System::GhostShinjuku, System::CfsShinjuku] {
        let pts: Vec<(f64, fig6::Fig6Point)> = loads
            .iter()
            .map(|&rate| (rate, fig6::run_point(sys, rate, false, fig6::HORIZON)))
            .collect();
        results.push((sys, pts));
    }
    let mut t = Table::new(vec![
        "offered (kreq/s)",
        "Shinjuku p99 (us)",
        "ghOSt p99 (us)",
        "CFS p99 (us)",
    ])
    .with_title("Fig. 6a: 99% latency vs offered load (dispersive RocksDB)");
    for (i, &rate) in loads.iter().enumerate() {
        t.row(vec![
            format!("{:.0}", rate / 1e3),
            format!("{:.0}", results[0].1[i].1.p99_us),
            format!("{:.0}", results[1].1[i].1.p99_us),
            format!("{:.0}", results[2].1[i].1.p99_us),
        ]);
    }
    t.print();

    let sat_shinjuku = saturation(&results[0].1);
    let sat_ghost = saturation(&results[1].1);
    let sat_cfs = saturation(&results[2].1);
    println!(
        "\nsaturation: Shinjuku {:.0}k, ghOSt {:.0}k, CFS {:.0}k (req/s)",
        sat_shinjuku / 1e3,
        sat_ghost / 1e3,
        sat_cfs / 1e3
    );
    assert!(
        sat_ghost >= 0.85 * sat_shinjuku,
        "ghOSt should stay close to Shinjuku's saturation (paper: within 5%)"
    );
    assert!(
        sat_cfs <= 0.85 * sat_shinjuku,
        "CFS-Shinjuku should saturate much earlier (paper: ~30% sooner)"
    );

    // --- Fig. 6b/c: with a co-located batch app. ---
    let mut tb = Table::new(vec![
        "offered (kreq/s)",
        "ghOSt p99 (us)",
        "ghOSt batch share",
        "CFS p99 (us)",
        "CFS batch share",
        "Shinjuku batch share",
    ])
    .with_title("Fig. 6b/c: tails and batch CPU share with a co-located batch app");
    let mut ghost_shares = Vec::new();
    let mut ghost_b_p99 = Vec::new();
    for (i, &rate) in loads.iter().enumerate() {
        let g = fig6::run_point(System::GhostShinjuku, rate, true, fig6::HORIZON);
        let c = fig6::run_point(System::CfsShinjuku, rate, true, fig6::HORIZON);
        // The Shinjuku dataplane's cores are unusable by anyone else.
        let s_share = 0.0;
        tb.row(vec![
            format!("{:.0}", rate / 1e3),
            format!("{:.0}", g.p99_us),
            format!("{:.2}", g.batch_share),
            format!("{:.0}", c.p99_us),
            format!("{:.2}", c.batch_share),
            format!("{s_share:.2}"),
        ]);
        ghost_shares.push((rate, g.batch_share));
        ghost_b_p99.push((rate, g.p99_us, results[1].1[i].1.p99_us));
    }
    tb.print();

    // Fig. 6c shape: at low load the batch app gets substantial CPU under
    // ghOSt+Shenango; the share shrinks as RocksDB load grows.
    let low = ghost_shares.first().expect("points").1;
    let high = ghost_shares.last().expect("points").1;
    assert!(
        low > 0.3,
        "batch app should get spare cycles at low load (share {low:.2})"
    );
    assert!(
        high < low,
        "batch share should shrink with load ({low:.2} -> {high:.2})"
    );
    // Fig. 6b shape: sharing with the batch app must not blow up ghOSt's
    // tails while the system is clearly below saturation (the paper's
    // "same tail latencies" claim; near the saturation knee both curves
    // explode together).
    for &(rate, with_batch, without) in &ghost_b_p99 {
        if without < 50.0 {
            assert!(
                with_batch < without.max(30.0) * 4.0 + 50.0,
                "batch app destroyed ghOSt tails at {rate}: {with_batch} vs {without}"
            );
        }
    }
    println!("\nOK: Fig. 6 shapes hold (ghOSt ~ Shinjuku, CFS early saturation, batch sharing).");
}
