//! Runs one `(policy × workload × fault plan × seed)` combo on the
//! simulated kernel and judges it with the oracles.
//!
//! Since the `ghost-lab` experiment engine landed, a combo is just a
//! thin wrapper over a [`Scenario`]: [`Combo::scenario`] maps the sweep
//! point onto the declarative spec, [`run_combo`] launches it through
//! the canonical builder path and layers the chaos oracles on top.
//! [`PolicyKind`] itself moved into `ghost-lab` and is re-exported here
//! so `repro.json` files and downstream callers are unaffected.

use crate::oracle::{self, Failure};
use crate::plan::{generate_plan, generate_recovery_plan};
use ghost_core::runtime::GhostStats;
use ghost_lab::engine::{Experiment, ExperimentResult};
use ghost_lab::fnv64_lines;
pub use ghost_lab::scenario::PolicyKind;
use ghost_lab::scenario::{Scenario, TopologySpec, WorkloadSpec};
use ghost_sim::faults::{FaultKind, FaultPlan};
use ghost_sim::time::{Nanos, MILLIS};
use ghost_sim::topology::{CpuId, Topology};
use ghost_trace::TraceRecord;

/// Watchdog timeout used for every chaos enclave: short enough that
/// recovery from a wedged agent fits inside the run horizon.
pub const WATCHDOG: Nanos = 20 * MILLIS;

/// One point of the sweep: everything needed to reproduce a run exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Combo {
    /// Policy under test.
    pub policy: PolicyKind,
    /// Seed for the kernel RNG, the workload shape, and the fault plan.
    pub seed: u64,
    /// Fault schedule injected into the kernel.
    pub plan: FaultPlan,
    /// Virtual run length.
    pub horizon: Nanos,
    /// Number of workload threads.
    pub threads: usize,
}

impl Combo {
    /// The sweep's combo for `(policy, seed)`: standard horizon and
    /// thread count, fault plan derived from the seed.
    pub fn generated(policy: PolicyKind, seed: u64) -> Self {
        let horizon = 120 * MILLIS;
        let topo = Topology::test_small(4);
        let cpus: Vec<CpuId> = policy.enclave_cpus(&topo).iter().collect();
        let plan = generate_plan(seed, horizon, &cpus);
        Self {
            policy,
            seed,
            plan,
            horizon,
            threads: 5,
        }
    }

    /// The recovery sweep's combo for `(policy, seed)`: like
    /// [`Combo::generated`] but every plan injects at least one agent
    /// crash or in-place upgrade, so reconstruction and failover run on
    /// every single combo instead of whenever the generic generator
    /// happens to roll one.
    pub fn generated_recovery(policy: PolicyKind, seed: u64) -> Self {
        let horizon = 120 * MILLIS;
        let topo = Topology::test_small(4);
        let cpus: Vec<CpuId> = policy.enclave_cpus(&topo).iter().collect();
        let plan = generate_recovery_plan(seed, horizon, &cpus);
        Self {
            policy,
            seed,
            plan,
            horizon,
            threads: 5,
        }
    }

    /// True if the run pre-stages a second policy version: always when
    /// the plan upgrades in place, and on even seeds when it crashes an
    /// agent (exercising both the fallback and hot-standby paths).
    pub fn stages_upgrade(&self) -> bool {
        let has = |f: fn(&FaultKind) -> bool| self.plan.events.iter().any(|fe| f(&fe.kind));
        has(|k| matches!(k, FaultKind::Upgrade))
            || (self.seed.is_multiple_of(2) && has(|k| matches!(k, FaultKind::AgentCrash { .. })))
    }

    /// True if the run arms a hot standby (degraded-mode failover): odd
    /// seeds whose plan crashes an agent. Even crash seeds stage an
    /// upgrade instead ([`Combo::stages_upgrade`]), so both §3.4 rescue
    /// paths stay covered. Derived from `(seed, plan)` alone — never
    /// stored — so replaying a `repro.json` rebuilds the same setup.
    pub fn plans_standby(&self) -> bool {
        !self.seed.is_multiple_of(2)
            && self
                .plan
                .events
                .iter()
                .any(|fe| matches!(fe.kind, FaultKind::AgentCrash { .. }))
    }

    /// The combo as a declarative `ghost-lab` scenario. Everything the
    /// run needs — machine, enclave shape, upgrade/standby staging,
    /// pulse workload, trace knobs — is in the returned value, so its
    /// spec string doubles as the combo's cache key.
    pub fn scenario(&self) -> Scenario {
        Scenario::builder()
            .name(format!("{}/seed={}", self.policy.name(), self.seed))
            .topology(TopologySpec::Small { cores: 4 })
            .policy(self.policy)
            .workload(WorkloadSpec::pulse(self.threads))
            .seed(self.seed)
            .horizon(self.horizon)
            .faults(self.plan.clone())
            .watchdog(WATCHDOG)
            .stage_upgrade(self.stages_upgrade())
            .standby(self.plans_standby())
            .trace_capacity(1 << 18)
            .build()
    }
}

/// Everything a finished run exposes to oracles, the shrinker, and tests.
pub struct RunReport {
    /// Oracle verdicts; empty means the run was clean.
    pub failures: Vec<Failure>,
    /// Workload segments completed.
    pub completions: u64,
    /// Runtime counters.
    pub stats: GhostStats,
    /// The recorded trace (for Chrome export of failing runs).
    pub records: Vec<TraceRecord>,
}

/// Evaluates every oracle against a finished run of `combo`.
fn judge(combo: &Combo, run: &ghost_lab::LabRun) -> Vec<Failure> {
    let records = run.sim.sink.snapshot();
    let recovery_slo = combo
        .plans_standby()
        .then(|| ghost_core::StandbyConfig::default().recovery_slo);
    oracle::evaluate(
        &records,
        run.sim.sink.dropped(),
        &run.sim.kernel.state,
        &run.sim.runtime,
        run.sim.enclave.id(),
        &run.threads,
        run.completions(),
        recovery_slo,
    )
}

/// Runs `combo` to its horizon and evaluates every oracle. Fully
/// deterministic: the same combo always returns the same report.
pub fn run_combo(combo: &Combo) -> RunReport {
    let mut run = combo.scenario().launch();
    run.run_to_horizon();
    let failures = judge(combo, &run);
    RunReport {
        completions: run.completions(),
        stats: run.sim.runtime.stats(),
        records: run.sim.sink.snapshot(),
        failures,
    }
}

/// A combo as a `ghost-lab` [`Experiment`], so the chaos sweep can run
/// on the parallel engine. The spec is the underlying scenario's spec
/// string (making sweep results content-addressed and cacheable); the
/// result is the scenario's hashable summary plus one `failure ...`
/// line per oracle violation; `pass` means no oracle fired.
pub struct ComboExperiment(pub Combo);

impl Experiment for ComboExperiment {
    fn label(&self) -> String {
        format!("{}/seed={}", self.0.policy.name(), self.0.seed)
    }

    fn spec(&self) -> String {
        self.0.scenario().spec_string()
    }

    fn execute(&self) -> ExperimentResult {
        let mut run = self.0.scenario().launch();
        run.run_to_horizon();
        let failures = judge(&self.0, &run);
        let mut lines = run.summary().lines;
        for f in &failures {
            lines.push(format!("failure {f}"));
        }
        let hash = fnv64_lines(&lines);
        ExperimentResult {
            pass: failures.is_empty(),
            hash,
            lines,
        }
    }
}
