//! Table 2: lines of code. Counts this repository's Rust sources the way
//! the paper counts C/C++ (non-blank, non-comment lines) and prints them
//! beside the paper's numbers for its own components.

use std::fs;
use std::path::Path;

/// A LOC entry.
#[derive(Debug, Clone)]
pub struct LocEntry {
    /// Component name.
    pub name: String,
    /// Counted lines.
    pub loc: usize,
}

/// Counts non-blank, non-comment lines in one Rust file.
pub fn count_file(src: &str) -> usize {
    let mut in_block_comment = false;
    src.lines()
        .filter(|line| {
            let t = line.trim();
            if in_block_comment {
                if t.contains("*/") {
                    in_block_comment = false;
                }
                return false;
            }
            if t.is_empty() {
                return false;
            }
            if t.starts_with("//") {
                return false;
            }
            if t.starts_with("/*") {
                if !t.contains("*/") {
                    in_block_comment = true;
                }
                return false;
            }
            true
        })
        .count()
}

/// Counts LOC across all `.rs` files under `dir`, recursively.
pub fn count_dir(dir: &Path) -> usize {
    let mut total = 0;
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            total += count_dir(&path);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(src) = fs::read_to_string(&path) {
                total += count_file(&src);
            }
        }
    }
    total
}

/// The paper's Table 2, for reference columns.
pub fn paper_table2() -> Vec<(&'static str, usize)> {
    vec![
        ("Linux CFS (kernel/sched/fair.c)", 6_217),
        ("Shinjuku (NSDI '19)", 3_900),
        ("Shenango (NSDI '19)", 13_161),
        ("ghOSt Kernel Scheduling Class", 3_777),
        ("ghOSt Userspace Support Library", 3_115),
        ("Shinjuku Policy (§4.2)", 710),
        ("Shinjuku + Shenango Policy (§4.2)", 727),
        ("Google Snap Policy (§4.3)", 855),
        ("Google Search Policy (§4.4)", 929),
        ("Secure VM Kernel Policy (§4.5)", 7_164),
        ("Secure VM ghOSt Policy (§4.5)", 4_702),
    ]
}

/// This reproduction's components, mapped to the closest paper rows.
pub fn repo_components(repo_root: &Path) -> Vec<LocEntry> {
    let crates = repo_root.join("crates");
    let file_loc = |rel: &str| -> usize {
        fs::read_to_string(crates.join(rel))
            .map(|s| count_file(&s))
            .unwrap_or(0)
    };
    vec![
        LocEntry {
            name: "ghost-sim (simulated kernel, incl. CFS)".into(),
            loc: count_dir(&crates.join("ghost-sim/src")),
        },
        LocEntry {
            name: "ghost-core (ghOSt class + ABI + runtime)".into(),
            loc: count_dir(&crates.join("ghost-core/src")),
        },
        LocEntry {
            name: "Shinjuku policy".into(),
            loc: file_loc("ghost-policies/src/shinjuku.rs"),
        },
        LocEntry {
            name: "Shinjuku + Shenango policy".into(),
            loc: file_loc("ghost-policies/src/shinjuku_shenango.rs"),
        },
        LocEntry {
            name: "Snap policy".into(),
            loc: file_loc("ghost-policies/src/snap.rs"),
        },
        LocEntry {
            name: "Search policy".into(),
            loc: file_loc("ghost-policies/src/search.rs"),
        },
        LocEntry {
            name: "Secure VM ghOSt policy".into(),
            loc: file_loc("ghost-policies/src/core_sched.rs"),
        },
        LocEntry {
            name: "Secure VM kernel policy (baseline)".into(),
            loc: file_loc("ghost-baselines/src/kernel_core_sched.rs"),
        },
        LocEntry {
            name: "Shinjuku dataplane (baseline)".into(),
            loc: file_loc("ghost-baselines/src/shinjuku_dataplane.rs"),
        },
        LocEntry {
            name: "MicroQuanta (baseline)".into(),
            loc: file_loc("ghost-baselines/src/microquanta.rs"),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_skip_comments_and_blanks() {
        let src =
            "\n// comment\nfn main() {\n    /* block\n    still block\n    */\n    let x = 1;\n}\n";
        assert_eq!(count_file(src), 3); // fn main() {, let x = 1;, }
    }

    #[test]
    fn inline_block_comment_line_is_skipped() {
        let src = "/* one-liner */\nlet y = 2;\n";
        assert_eq!(count_file(src), 1);
    }

    #[test]
    fn paper_rows_are_present() {
        let t = paper_table2();
        assert_eq!(t.len(), 11);
        assert_eq!(t[3].1, 3_777);
    }
}
