//! The §4.4 Google Search workload, with the paper's three query types:
//!
//! * **A** — "CPU and memory-intensive query serviced by worker threads
//!   which are woken up as needed"; sub-queries "must be processed by
//!   specific worker threads tied to a NUMA node" (socket-affine
//!   cpumasks, data locality).
//! * **B** — "needs little computation but does require access to the
//!   SSD", short-lived workers: compute, block on SSD, compute.
//! * **C** — "CPU-intensive load serviced by long-living worker threads".
//!
//! Queries pass through CFS *server* threads at ingress, then run on
//! per-type worker pools whose scheduling class the harness picks. The
//! cache-warmth model charges extra service time when a worker resumes
//! on a different CCX/socket than it last ran on — the effect the
//! paper's NUMA/CCX-aware policy exploits.

use ghost_metrics::{LogHistogram, TimeSeries};
use ghost_sim::app::{App, AppId, Next};
use ghost_sim::kernel::KernelState;
use ghost_sim::thread::{ThreadState, Tid};
use ghost_sim::time::{Nanos, MICROS, SECS};
use ghost_sim::topology::CpuId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};

/// Query types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryType {
    /// CPU+memory intensive, NUMA-affine.
    A,
    /// SSD-bound, short compute.
    B,
    /// CPU-bound, long-living workers.
    C,
}

/// Search workload configuration.
#[derive(Debug, Clone)]
pub struct SearchWorkloadConfig {
    /// Queries per second per type (A, B, C).
    pub qps: [f64; 3],
    /// Type-A compute range.
    pub a_compute: (Nanos, Nanos),
    /// Type-B compute per phase (before and after the SSD wait).
    pub b_compute: Nanos,
    /// Type-B SSD latency range.
    pub b_ssd: (Nanos, Nanos),
    /// Type-C compute range.
    pub c_compute: (Nanos, Nanos),
    /// Ingress server-thread time per query (CFS).
    pub server_time: Nanos,
    /// Extra service time when a worker resumes on a new CCX.
    pub ccx_migration_penalty: Nanos,
    /// Extra service time when a worker resumes on a new socket
    /// (type A only — its data is socket-resident).
    pub numa_migration_penalty: Nanos,
    /// RNG seed.
    pub seed: u64,
    /// Queries arriving before this are not recorded.
    pub warmup: Nanos,
}

impl Default for SearchWorkloadConfig {
    fn default() -> Self {
        Self {
            qps: [16_000.0, 20_000.0, 16_000.0],
            a_compute: (3_000 * MICROS, 10_000 * MICROS),
            b_compute: 80 * MICROS,
            b_ssd: (500 * MICROS, 2_000 * MICROS),
            c_compute: (1_500 * MICROS, 5_000 * MICROS),
            server_time: 15 * MICROS,
            ccx_migration_penalty: 400 * MICROS,
            numa_migration_penalty: 1_500 * MICROS,
            seed: 1,
            warmup: 2 * SECS,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Query {
    ty: QueryType,
    arrival: Nanos,
    compute: Nanos,
    ssd: Nanos,
}

#[derive(Debug, Clone, Copy)]
enum WorkerPhase {
    Idle,
    /// Running query compute; for B, the pre-SSD phase.
    Compute(Query),
    /// B only: waiting on the SSD (blocked, timer pending).
    SsdWait(Query),
    /// B only: post-SSD compute.
    PostSsd(Query),
    /// Extra segment charged for a cross-CCX/socket resume.
    MigrationPenalty(Query, WhichNext),
}

#[derive(Debug, Clone, Copy)]
enum WhichNext {
    ThenCompute,
    ThenDone,
}

struct Worker {
    ty: QueryType,
    phase: WorkerPhase,
    /// Where the worker last computed (for the warmth model).
    warm_cpu: Option<CpuId>,
}

/// Per-type results: latency series and aggregate histogram.
pub struct SearchResults {
    /// Completed-query latency per type, binned per second.
    pub series: HashMap<QueryType, TimeSeries>,
    /// Aggregate latency per type.
    pub latency: HashMap<QueryType, LogHistogram>,
    /// Completions per type.
    pub completed: HashMap<QueryType, u64>,
}

/// The Search serving app.
pub struct SearchApp {
    cfg: SearchWorkloadConfig,
    app_id: AppId,
    rng: StdRng,
    workers: HashMap<Tid, Worker>,
    free: HashMap<QueryType, Vec<Tid>>,
    backlog: HashMap<QueryType, VecDeque<Query>>,
    servers: Vec<Tid>,
    server_q: VecDeque<Query>,
    in_server: HashMap<Tid, Query>,
    series: HashMap<QueryType, TimeSeries>,
    latency: HashMap<QueryType, LogHistogram>,
    completed: HashMap<QueryType, u64>,
    /// Timer keys: 0/1/2 arrivals per type, 3 = unused, 1000+tid = SSD
    /// completion for a worker.
    _reserved: (),
}

const TIMER_SSD_BASE: u64 = 1000;

impl SearchApp {
    /// Creates the app.
    pub fn new(cfg: SearchWorkloadConfig, app_id: AppId) -> Self {
        let seed = cfg.seed;
        let mut series = HashMap::new();
        let mut latency = HashMap::new();
        let mut completed = HashMap::new();
        let mut free = HashMap::new();
        let mut backlog = HashMap::new();
        for ty in [QueryType::A, QueryType::B, QueryType::C] {
            series.insert(ty, TimeSeries::new(SECS));
            latency.insert(ty, LogHistogram::new());
            completed.insert(ty, 0);
            free.insert(ty, Vec::new());
            backlog.insert(ty, VecDeque::new());
        }
        Self {
            cfg,
            app_id,
            rng: StdRng::seed_from_u64(seed),
            workers: HashMap::new(),
            free,
            backlog,
            servers: Vec::new(),
            server_q: VecDeque::new(),
            in_server: HashMap::new(),
            series,
            latency,
            completed,
            _reserved: (),
        }
    }

    /// Registers a worker for a query type.
    pub fn add_worker(&mut self, tid: Tid, ty: QueryType) {
        self.workers.insert(
            tid,
            Worker {
                ty,
                phase: WorkerPhase::Idle,
                warm_cpu: None,
            },
        );
        self.free.get_mut(&ty).expect("type exists").push(tid);
    }

    /// Registers an ingress server thread (CFS).
    pub fn add_server(&mut self, tid: Tid) {
        self.servers.push(tid);
    }

    /// Arms the arrival timers.
    pub fn start(&mut self, k: &mut KernelState) {
        for (i, _) in [QueryType::A, QueryType::B, QueryType::C]
            .iter()
            .enumerate()
        {
            let gap = self.gap(i);
            k.arm_app_timer(k.now + gap, self.app_id, i as u64);
        }
    }

    fn gap(&mut self, ty_idx: usize) -> Nanos {
        let mean = 1e9 / self.cfg.qps[ty_idx];
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        ((-u.ln()) * mean).max(1.0) as Nanos
    }

    fn make_query(&mut self, ty: QueryType, now: Nanos) -> Query {
        let (compute, ssd) = match ty {
            QueryType::A => (
                self.rng
                    .gen_range(self.cfg.a_compute.0..=self.cfg.a_compute.1),
                0,
            ),
            QueryType::B => (
                self.cfg.b_compute,
                self.rng.gen_range(self.cfg.b_ssd.0..=self.cfg.b_ssd.1),
            ),
            QueryType::C => (
                self.rng
                    .gen_range(self.cfg.c_compute.0..=self.cfg.c_compute.1),
                0,
            ),
        };
        Query {
            ty,
            arrival: now,
            compute,
            ssd,
        }
    }

    /// Dispatches a query to a free worker of its type, or backlogs it.
    fn dispatch(&mut self, q: Query, k: &mut KernelState) {
        let Some(tid) = self.free.get_mut(&q.ty).and_then(Vec::pop) else {
            self.backlog.get_mut(&q.ty).expect("type").push_back(q);
            return;
        };
        let penalty = self.resume_penalty(tid, k);
        let w = self.workers.get_mut(&tid).expect("registered worker");
        if penalty > 0 {
            w.phase = WorkerPhase::MigrationPenalty(q, WhichNext::ThenCompute);
            k.thread_mut(tid).remaining = penalty;
        } else {
            w.phase = WorkerPhase::Compute(q);
            k.thread_mut(tid).remaining = q.compute;
        }
        k.wake(tid);
    }

    /// Cache-warmth model: how much extra time a worker pays to refill
    /// caches if the kernel placed it far from where it last computed.
    /// Evaluated lazily at segment end (when placement is known).
    fn resume_penalty(&self, _tid: Tid, _k: &KernelState) -> Nanos {
        // Placement is unknown until the thread actually runs; the real
        // penalty is applied in `on_segment_end` by comparing CPUs. At
        // dispatch we charge nothing.
        0
    }

    fn migration_penalty(&self, w: &Worker, now_cpu: CpuId, k: &KernelState) -> Nanos {
        let Some(prev) = w.warm_cpu else {
            return 0;
        };
        if k.topo.same_ccx(prev, now_cpu) {
            0
        } else if k.topo.same_socket(prev, now_cpu) {
            self.cfg.ccx_migration_penalty
        } else if w.ty == QueryType::A {
            self.cfg.numa_migration_penalty
        } else {
            self.cfg.ccx_migration_penalty
        }
    }

    fn complete(&mut self, q: Query, now: Nanos) {
        *self.completed.get_mut(&q.ty).expect("type") += 1;
        if q.arrival >= self.cfg.warmup {
            let lat = now - q.arrival;
            self.series.get_mut(&q.ty).expect("type").record(now, lat);
            self.latency.get_mut(&q.ty).expect("type").record(lat);
        }
    }

    /// Extracts results.
    pub fn results(self) -> SearchResults {
        SearchResults {
            series: self.series,
            latency: self.latency,
            completed: self.completed,
        }
    }
}

impl App for SearchApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "search"
    }

    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        if key >= TIMER_SSD_BASE {
            // SSD completion: resume the worker's post-SSD compute.
            let tid = Tid((key - TIMER_SSD_BASE) as u32);
            let Some(w) = self.workers.get_mut(&tid) else {
                return;
            };
            if let WorkerPhase::SsdWait(q) = w.phase {
                w.phase = WorkerPhase::PostSsd(q);
                k.thread_mut(tid).remaining = q.compute;
                k.wake(tid);
            }
            return;
        }
        // Query arrival of type `key`.
        let ty = [QueryType::A, QueryType::B, QueryType::C][key as usize];
        let q = self.make_query(ty, k.now);
        // Ingress: a CFS server thread touches the query first.
        self.server_q.push_back(q);
        let st = self.cfg.server_time;
        if let Some(&srv) = self
            .servers
            .iter()
            .find(|&&s| k.threads[s.index()].state == ThreadState::Blocked)
        {
            if let Some(next) = self.server_q.pop_front() {
                self.in_server.insert(srv, next);
                k.thread_mut(srv).remaining = st;
                k.wake(srv);
            }
        }
        let gap = self.gap(key as usize);
        k.arm_app_timer(k.now + gap, self.app_id, key);
    }

    fn on_segment_end(&mut self, tid: Tid, k: &mut KernelState) -> Next {
        // Server threads dispatch to workers.
        if let Some(q) = self.in_server.remove(&tid) {
            self.dispatch(q, k);
            if let Some(next) = self.server_q.pop_front() {
                self.in_server.insert(tid, next);
                return Next::Run {
                    dur: self.cfg.server_time,
                };
            }
            return Next::Block;
        }
        let Some(phase) = self.workers.get(&tid).map(|w| w.phase) else {
            return Next::Block;
        };
        let cpu = k.threads[tid.index()].last_cpu.unwrap_or(CpuId(0));
        match phase {
            WorkerPhase::Idle => Next::Block,
            WorkerPhase::MigrationPenalty(q, which) => {
                let w = self.workers.get_mut(&tid).expect("worker");
                w.warm_cpu = Some(cpu);
                match which {
                    WhichNext::ThenCompute => {
                        w.phase = WorkerPhase::Compute(q);
                        Next::Run { dur: q.compute }
                    }
                    WhichNext::ThenDone => {
                        w.phase = WorkerPhase::Idle;
                        let ty = w.ty;
                        self.complete(q, k.now);
                        self.finish_worker(tid, ty, k)
                    }
                }
            }
            WorkerPhase::Compute(q) => {
                // Placement-dependent warmth: pay the penalty now that we
                // know where the kernel ran us. The cost is equivalent to
                // charging it up front (cold caches slow the start); SSD
                // queries (B) skip it — their compute is IO-dominated.
                let penalty = if q.ssd == 0 {
                    let w = &self.workers[&tid];
                    self.migration_penalty(w, cpu, k)
                } else {
                    0
                };
                let w = self.workers.get_mut(&tid).expect("worker");
                if penalty > 0 && w.warm_cpu.is_some() {
                    w.warm_cpu = Some(cpu);
                    w.phase = WorkerPhase::MigrationPenalty(q, WhichNext::ThenDone);
                    return Next::Run { dur: penalty };
                }
                w.warm_cpu = Some(cpu);
                if q.ssd > 0 {
                    // B: block on the SSD; a timer resumes us.
                    let w = self.workers.get_mut(&tid).expect("worker");
                    w.phase = WorkerPhase::SsdWait(q);
                    let at = k.now + q.ssd;
                    k.arm_app_timer(at, self.app_id, TIMER_SSD_BASE + tid.0 as u64);
                    return Next::Block;
                }
                let w = self.workers.get_mut(&tid).expect("worker");
                w.phase = WorkerPhase::Idle;
                let ty = w.ty;
                self.complete(q, k.now);
                self.finish_worker(tid, ty, k)
            }
            WorkerPhase::PostSsd(q) => {
                let w = self.workers.get_mut(&tid).expect("worker");
                w.warm_cpu = Some(cpu);
                w.phase = WorkerPhase::Idle;
                let ty = w.ty;
                self.complete(q, k.now);
                self.finish_worker(tid, ty, k)
            }
            WorkerPhase::SsdWait(_) => Next::Block,
        }
    }
}

impl SearchApp {
    /// After completing a query: pull backlog work or go idle.
    fn finish_worker(&mut self, tid: Tid, ty: QueryType, _k: &mut KernelState) -> Next {
        if let Some(q) = self.backlog.get_mut(&ty).and_then(VecDeque::pop_front) {
            let w = self.workers.get_mut(&tid).expect("worker");
            w.phase = WorkerPhase::Compute(q);
            return Next::Run { dur: q.compute };
        }
        self.free.get_mut(&ty).expect("type").push(tid);
        Next::Block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_types_have_distinct_profiles() {
        let mut app = SearchApp::new(SearchWorkloadConfig::default(), AppId(0));
        let a = app.make_query(QueryType::A, 0);
        let b = app.make_query(QueryType::B, 0);
        let c = app.make_query(QueryType::C, 0);
        assert_eq!(a.ssd, 0);
        assert!(b.ssd > 0);
        assert_eq!(c.ssd, 0);
        assert!(a.compute > c.compute);
    }
}
