//! Per-CPU runtime state.

use crate::thread::Tid;
use crate::time::Nanos;

/// What a CPU is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuRunState {
    /// Nothing to run.
    Idle,
    /// Executing `current`.
    Busy,
    /// In the middle of a context switch.
    Switching,
}

/// Mutable per-CPU state.
#[derive(Debug, Clone)]
pub struct CpuState {
    /// Thread currently on this CPU (valid when `run_state != Idle`;
    /// during a switch it is the *incoming* thread, already moved off its
    /// runqueue).
    pub current: Option<Tid>,
    /// Coarse run state.
    pub run_state: CpuRunState,
    /// Generation for in-flight context switches; a `CtxSwitchDone` event
    /// with a stale seq is ignored.
    pub switch_seq: u64,
    /// Set while switching if another resched request arrived; the kernel
    /// re-runs the scheduler when the switch completes.
    pub resched_after_switch: bool,
    /// Set when a resched for this CPU is already queued in the deferred
    /// batch, to coalesce duplicates.
    pub resched_pending: bool,
    /// Total busy (non-idle) wall time.
    pub busy_ns: Nanos,
    /// When the current busy period started (valid when busy/switching).
    pub busy_since: Nanos,
    /// When this CPU last became idle.
    pub idle_since: Nanos,
    /// Context switches performed.
    pub switches: u64,
    /// IPIs received.
    pub ipis: u64,
    /// Number of CFS threads queued (not running) on this CPU, maintained
    /// by the CFS class so agents can detect CFS threads waiting behind
    /// them (the hot-handoff trigger of §3.3).
    pub cfs_queued: u32,
    /// Tracing bookkeeping: the thread that last left this CPU as
    /// `(tid, class, prev_state)`, pending emission of the combined
    /// `sched_switch` tracepoint when the incoming side lands. `None`
    /// when tracing is off or the last switch-out was already emitted.
    pub trace_prev: Option<(u32, u8, u8)>,
}

impl Default for CpuState {
    fn default() -> Self {
        Self {
            current: None,
            run_state: CpuRunState::Idle,
            switch_seq: 0,
            resched_after_switch: false,
            resched_pending: false,
            busy_ns: 0,
            busy_since: 0,
            idle_since: 0,
            switches: 0,
            ipis: 0,
            cfs_queued: 0,
            trace_prev: None,
        }
    }
}

impl CpuState {
    /// True if nothing is running or switching in.
    pub fn is_idle(&self) -> bool {
        self.run_state == CpuRunState::Idle
    }

    /// True if the CPU is occupied (busy or mid-switch).
    pub fn is_occupied(&self) -> bool {
        !self.is_idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cpu_is_idle() {
        let c = CpuState::default();
        assert!(c.is_idle());
        assert!(!c.is_occupied());
        assert_eq!(c.current, None);
    }

    #[test]
    fn occupancy_tracks_run_state() {
        let mut c = CpuState {
            run_state: CpuRunState::Busy,
            ..CpuState::default()
        };
        assert!(c.is_occupied());
        c.run_state = CpuRunState::Switching;
        assert!(c.is_occupied());
    }
}
