//! Shared-memory message queues.
//!
//! The paper: "we opted to use custom queues in shared memory to
//! efficiently handle agent wakeups ... fast lockless ring buffers that
//! synchronize consumer/producer access" (§3.1). This is a bounded
//! multi-producer/multi-consumer ring (Vyukov's algorithm): producers are
//! the kernel contexts of every CPU posting thread-state messages;
//! consumers are agents. In the simulator both run on one OS thread, but
//! the implementation is a real lock-free queue and is benchmarked
//! cross-thread in `ghost-bench`.

use crate::msg::Message;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};

/// Error returned when producing into a full queue.
///
/// A full queue means the agent has fallen hopelessly behind; the enclave
/// watchdog treats persistent overflow as a misbehaving agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

struct Slot {
    /// Sequence stamp: `pos` when free for writing round k, `pos + 1`
    /// when readable.
    seq: AtomicU64,
    value: UnsafeCell<MaybeUninit<Message>>,
}

/// A bounded lock-free MPMC queue of [`Message`]s.
///
/// # Examples
///
/// ```
/// use ghost_core::queue::MessageQueue;
/// use ghost_core::msg::{Message, MsgType};
/// use ghost_sim::thread::Tid;
/// use ghost_sim::topology::CpuId;
///
/// let q = MessageQueue::new(8);
/// let m = Message::thread(MsgType::ThreadWakeup, Tid(1), 1, CpuId(0), 0);
/// q.push(m).unwrap();
/// assert_eq!(q.len(), 1);
/// assert_eq!(q.pop(), Some(m));
/// assert_eq!(q.pop(), None);
/// ```
pub struct MessageQueue {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    tail: AtomicU64,
    /// Messages rejected because the ring was full, cumulative over the
    /// queue's lifetime (the overflow signal the watchdog and the
    /// `ghost_queue_overflow` tracepoint report).
    dropped: AtomicU64,
}

// SAFETY: `MessageQueue` synchronizes all access to slot values through
// the per-slot `seq` stamps with acquire/release ordering (Vyukov MPMC):
// a value is written only after the writer claimed the slot via CAS on
// `tail`, published by the release store of `seq`, and read only after an
// acquire load observes that store. `Message` is `Copy` and `Send`.
unsafe impl Send for MessageQueue {}
// SAFETY: See `Send`; all shared mutation is CAS/stamp protected.
unsafe impl Sync for MessageQueue {}

impl MessageQueue {
    /// Creates a queue with capacity rounded up to a power of two (min 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots: Vec<Slot> = (0..cap)
            .map(|i| Slot {
                seq: AtomicU64::new(i as u64),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            slots: slots.into_boxed_slice(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Capacity (always a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Produces a message. Fails with [`QueueFull`] when the ring has no
    /// free slot.
    pub fn push(&self, msg: Message) -> Result<(), QueueFull> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq.cmp(&pos) {
                std::cmp::Ordering::Equal => {
                    match self.tail.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: The CAS above gave this thread
                            // exclusive ownership of the slot for round
                            // `pos`; no other producer can claim it until
                            // `seq` advances, and no consumer reads it
                            // until the release store below.
                            unsafe { (*slot.value.get()).write(msg) };
                            slot.seq.store(pos + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(actual) => pos = actual,
                    }
                }
                std::cmp::Ordering::Less => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return Err(QueueFull);
                }
                std::cmp::Ordering::Greater => {
                    pos = self.tail.load(Ordering::Relaxed);
                }
            }
        }
    }

    /// Cumulative count of messages rejected by [`MessageQueue::push`]
    /// because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records a drop that happened outside [`MessageQueue::push`] (fault
    /// injection rejecting a message before it reaches the ring), keeping
    /// the cumulative counter consistent for overflow-resync logic.
    pub fn note_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Consumes the oldest message, if any.
    pub fn pop(&self) -> Option<Message> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            let expected = pos + 1;
            match seq.cmp(&expected) {
                std::cmp::Ordering::Equal => {
                    match self.head.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: The CAS gave this thread exclusive
                            // read ownership of the slot for round `pos`,
                            // and the acquire load of `seq` ordered after
                            // the producer's write of the value.
                            let msg = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.seq.store(pos + self.mask + 1, Ordering::Release);
                            return Some(msg);
                        }
                        Err(actual) => pos = actual,
                    }
                }
                std::cmp::Ordering::Less => return None,
                std::cmp::Ordering::Greater => {
                    pos = self.head.load(Ordering::Relaxed);
                }
            }
        }
    }

    /// Approximate number of queued messages.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }

    /// True if no messages are queued (approximate under concurrency,
    /// exact single-threaded).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains all currently queued messages into a vector.
    pub fn drain(&self) -> Vec<Message> {
        let mut out = Vec::with_capacity(self.len());
        self.drain_into(&mut out);
        out
    }

    /// Drains all currently queued messages, appending to `out`. The
    /// hot-path form: a reused buffer means a group commit's worth of
    /// messages moves without a per-activation allocation.
    pub fn drain_into(&self, out: &mut Vec<Message>) {
        out.reserve(self.len());
        while let Some(m) = self.pop() {
            out.push(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgType;
    use ghost_sim::thread::Tid;
    use ghost_sim::topology::CpuId;

    fn msg(i: u32) -> Message {
        Message::thread(MsgType::ThreadWakeup, Tid(i), i as u64, CpuId(0), 0)
    }

    #[test]
    fn fifo_order() {
        let q = MessageQueue::new(16);
        for i in 0..10 {
            q.push(msg(i)).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().tid, Tid(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(MessageQueue::new(10).capacity(), 16);
        assert_eq!(MessageQueue::new(1).capacity(), 2);
        assert_eq!(MessageQueue::new(64).capacity(), 64);
    }

    #[test]
    fn full_queue_rejects() {
        let q = MessageQueue::new(4);
        for i in 0..4 {
            q.push(msg(i)).unwrap();
        }
        assert_eq!(q.push(msg(99)), Err(QueueFull));
        q.pop().unwrap();
        q.push(msg(4)).unwrap();
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn drop_counter_tracks_rejections() {
        let q = MessageQueue::new(2);
        assert_eq!(q.dropped(), 0);
        q.push(msg(0)).unwrap();
        q.push(msg(1)).unwrap();
        assert_eq!(q.push(msg(2)), Err(QueueFull));
        assert_eq!(q.push(msg(3)), Err(QueueFull));
        assert_eq!(q.dropped(), 2);
        // Draining frees space; the counter keeps its history.
        q.drain();
        q.push(msg(4)).unwrap();
        assert_eq!(q.dropped(), 2);
    }

    #[test]
    fn wraps_many_rounds() {
        let q = MessageQueue::new(4);
        for round in 0..100u32 {
            q.push(msg(round)).unwrap();
            assert_eq!(q.pop().unwrap().tid, Tid(round));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn drain_empties() {
        let q = MessageQueue::new(8);
        for i in 0..5 {
            q.push(msg(i)).unwrap();
        }
        let v = q.drain();
        assert_eq!(v.len(), 5);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_producers_single_consumer() {
        use std::sync::Arc;
        let q = Arc::new(MessageQueue::new(1024));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..10_000u32 {
                        let m = msg(p * 1_000_000 + i);
                        loop {
                            if q.push(m).is_ok() {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = [0u32; 4];
                let mut total = 0;
                while total < 40_000 {
                    if let Some(m) = q.pop() {
                        let p = (m.tid.0 / 1_000_000) as usize;
                        let i = m.tid.0 % 1_000_000;
                        // Per-producer FIFO.
                        assert_eq!(i, seen[p]);
                        seen[p] += 1;
                        total += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        for h in producers {
            h.join().unwrap();
        }
        consumer.join().unwrap();
        assert!(q.is_empty());
    }
}
