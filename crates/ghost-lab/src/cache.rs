//! Content-addressed result cache.
//!
//! A finished [`crate::engine::ExperimentResult`] is stored in a plain
//! text file named by a hash of the experiment's *spec string* plus the
//! crate version. Re-running an unchanged sweep is then a pure cache
//! hit: zero simulations execute. Bumping the crate version (or any
//! change to the spec — topology, policy, seed, fault plan, ...)
//! changes the key, so stale results can never be returned.
//!
//! The format is deliberately simple — one header line, the pass flag,
//! the result hash, then each result line prefixed with `| ` — so a
//! cache file doubles as a human-readable run record. Any parse
//! mismatch (old format version, truncated file) is treated as a miss.

use crate::engine::ExperimentResult;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Magic first line of every cache file; bump on format changes.
const HEADER: &str = "ghost-lab-cache v1";

/// 64-bit FNV-1a. Stable across platforms and runs — the whole
/// determinism story hangs on result hashes being reproducible, so the
/// hash function is pinned here rather than borrowed from `std`
/// (`DefaultHasher` is explicitly allowed to change between releases).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over a sequence of lines, with a separator folded in so that
/// `["ab", "c"]` and `["a", "bc"]` hash differently.
pub fn fnv64_lines<S: AsRef<str>>(lines: &[S]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for &b in line.as_ref().as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A directory of cached experiment results, keyed by spec content.
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// The content key for a spec string: two independent FNV passes
    /// (one salted with the crate version) giving 128 bits of name
    /// space, rendered as 32 hex digits.
    pub fn key(spec: &str) -> String {
        let plain = fnv64(spec.as_bytes());
        let salted = fnv64(format!("{} {spec}", env!("CARGO_PKG_VERSION")).as_bytes());
        format!("{plain:016x}{salted:016x}")
    }

    fn path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.txt"))
    }

    /// Looks up a cached result. Any format mismatch is a miss.
    pub fn load(&self, key: &str) -> Option<ExperimentResult> {
        let text = fs::read_to_string(self.path(key)).ok()?;
        let mut it = text.lines();
        if it.next()? != HEADER {
            return None;
        }
        let pass = match it.next()?.strip_prefix("pass ")? {
            "1" => true,
            "0" => false,
            _ => return None,
        };
        let hash = u64::from_str_radix(it.next()?.strip_prefix("hash ")?, 16).ok()?;
        let lines: Vec<String> = it
            .map(|l| l.strip_prefix("| ").map(str::to_string))
            .collect::<Option<_>>()?;
        Some(ExperimentResult { pass, hash, lines })
    }

    /// Stores a result under `key`. Errors are swallowed — a cache that
    /// cannot write degrades to always-miss, it never fails the sweep.
    pub fn store(&self, key: &str, result: &ExperimentResult) {
        let mut text = format!(
            "{HEADER}\npass {}\nhash {:016x}\n",
            u8::from(result.pass),
            result.hash
        );
        for line in &result.lines {
            text.push_str("| ");
            text.push_str(line);
            text.push('\n');
        }
        let _ = fs::write(self.path(key), text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for FNV-1a 64-bit.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn line_hash_respects_boundaries() {
        assert_ne!(
            fnv64_lines(&["ab", "c"]),
            fnv64_lines(&["a", "bc"]),
            "line boundaries must be part of the hash"
        );
    }

    #[test]
    fn key_depends_on_spec() {
        assert_ne!(Cache::key("scenario a"), Cache::key("scenario b"));
        assert_eq!(Cache::key("scenario a"), Cache::key("scenario a"));
    }

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join(format!("ghost-lab-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = Cache::open(&dir).unwrap();
        let r = ExperimentResult {
            pass: true,
            hash: 0xdead_beef,
            lines: vec!["completions 42".into(), "txns 7".into()],
        };
        let key = Cache::key("spec");
        assert!(cache.load(&key).is_none());
        cache.store(&key, &r);
        assert_eq!(cache.load(&key), Some(r));
        let _ = fs::remove_dir_all(&dir);
    }
}
