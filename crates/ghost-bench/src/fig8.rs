//! Fig. 8: Google Search (§4.4) on a 256-CPU AMD Rome machine: CFS vs
//! the NUMA/CCX-aware least-runtime-first ghOSt policy, serving query
//! types A (CPU+memory, NUMA-affine), B (SSD), and C (CPU-bound).

use ghost_core::enclave::EnclaveConfig;
use ghost_core::runtime::GhostRuntime;
use ghost_policies::search::{SearchConfig, SearchPolicy};
use ghost_sim::kernel::{Kernel, KernelConfig, ThreadSpec};
use ghost_sim::time::{Nanos, MILLIS};
use ghost_sim::topology::Topology;
use ghost_sim::CpuSet;
use ghost_workloads::search::{QueryType, SearchApp, SearchResults, SearchWorkloadConfig};

/// Scheduler under test.
#[derive(Debug, Clone)]
pub enum SearchSched {
    /// Stock CFS.
    Cfs,
    /// The ghOSt Search policy with the given tunables (ablations flip
    /// the flags).
    Ghost(SearchConfig),
}

impl SearchSched {
    /// Legend name.
    pub fn name(&self) -> &'static str {
        match self {
            SearchSched::Cfs => "CFS",
            SearchSched::Ghost(_) => "ghOSt",
        }
    }
}

/// Worker pool sizes per query type.
pub const A_WORKERS_PER_SOCKET: usize = 96;
pub const B_WORKERS: usize = 72;
pub const C_WORKERS: usize = 96;
pub const SERVERS: usize = 16;

/// Runs the Search experiment for `duration` of virtual time.
pub fn run(sched: SearchSched, wl: SearchWorkloadConfig, duration: Nanos) -> SearchResults {
    let topo = Topology::rome_256();
    let cfg = KernelConfig {
        tick_ns: 4 * MILLIS,
        ..KernelConfig::default()
    };
    let mut kernel = Kernel::new(topo, cfg);
    let app_id = kernel.state.next_app_id();
    let mut app = SearchApp::new(wl, app_id);

    let socket0 = kernel.state.topo.socket_cpus(0);
    let socket1 = kernel.state.topo.socket_cpus(1);
    let mut workers = Vec::new();
    // Type A: socket-affine pools ("sub-queries must be processed by
    // specific worker threads tied to a NUMA node").
    for (si, socket) in [socket0, socket1].into_iter().enumerate() {
        for i in 0..A_WORKERS_PER_SOCKET {
            let tid = kernel.spawn(
                ThreadSpec::workload(&format!("A-s{si}-{i}"), &kernel.state.topo)
                    .app(app_id)
                    .affinity(socket),
            );
            app.add_worker(tid, QueryType::A);
            workers.push(tid);
        }
    }
    for i in 0..B_WORKERS {
        let tid =
            kernel.spawn(ThreadSpec::workload(&format!("B-{i}"), &kernel.state.topo).app(app_id));
        app.add_worker(tid, QueryType::B);
        workers.push(tid);
    }
    for i in 0..C_WORKERS {
        let tid =
            kernel.spawn(ThreadSpec::workload(&format!("C-{i}"), &kernel.state.topo).app(app_id));
        app.add_worker(tid, QueryType::C);
        workers.push(tid);
    }
    for i in 0..SERVERS {
        let tid = kernel
            .spawn(ThreadSpec::workload(&format!("server-{i}"), &kernel.state.topo).app(app_id));
        app.add_server(tid);
    }
    app.start(&mut kernel.state);
    kernel.add_app(Box::new(app));

    if let SearchSched::Ghost(policy_cfg) = &sched {
        let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
        let cpus: CpuSet = kernel.state.topo.all_cpus_set();
        let enclave = runtime.launch_enclave(
            &mut kernel,
            cpus,
            EnclaveConfig::centralized("search"),
            Box::new(SearchPolicy::new(policy_cfg.clone())),
        );
        for &w in &workers {
            enclave.attach_thread(&mut kernel.state, w);
        }
    }

    kernel.run_until(duration);
    let app = kernel
        .app_mut(app_id)
        .as_any()
        .downcast_mut::<SearchApp>()
        .expect("search app");
    // SearchApp::results consumes; swap a fresh app in its place.
    let extracted = std::mem::replace(app, SearchApp::new(SearchWorkloadConfig::default(), app_id));
    extracted.results()
}
