//! The Agent class (top priority) and a simple FIFO real-time class.

use crate::class::SchedClass;
use crate::kernel::KernelState;
use crate::thread::Tid;
use crate::topology::CpuId;
use std::collections::VecDeque;

/// The scheduling class hosting ghOSt agent threads.
///
/// Per §3.3 of the paper, "ghOSt assigns all agents a high kernel priority
/// ... no other thread in the machine, whether ghOSt or non-ghOSt, can
/// preempt agent-threads". Agents are pinned: each agent thread's affinity
/// names exactly one CPU, and the class queues it there.
pub struct AgentClass {
    rq: Vec<VecDeque<Tid>>,
}

impl AgentClass {
    /// Creates the class for a machine with `num_cpus` CPUs.
    pub fn new(num_cpus: usize) -> Self {
        Self {
            rq: vec![VecDeque::new(); num_cpus],
        }
    }

    fn home_cpu(tid: Tid, k: &KernelState) -> CpuId {
        k.threads[tid.index()]
            .affinity
            .first()
            .expect("agent thread must have a non-empty affinity")
    }
}

impl SchedClass for AgentClass {
    fn name(&self) -> &'static str {
        "agent"
    }

    fn enqueue(&mut self, tid: Tid, k: &mut KernelState) -> Option<CpuId> {
        let cpu = Self::home_cpu(tid, k);
        self.rq[cpu.index()].push_back(tid);
        Some(cpu)
    }

    fn dequeue(&mut self, tid: Tid, k: &mut KernelState) {
        let cpu = Self::home_cpu(tid, k);
        self.rq[cpu.index()].retain(|&t| t != tid);
    }

    fn pick_next(&mut self, cpu: CpuId, _k: &mut KernelState) -> Option<Tid> {
        self.rq[cpu.index()].pop_front()
    }

    fn put_prev(&mut self, tid: Tid, cpu: CpuId, still_runnable: bool, _k: &mut KernelState) {
        if still_runnable {
            self.rq[cpu.index()].push_back(tid);
        }
    }

    fn on_tick(&mut self, _cpu: CpuId, _current: Tid, _k: &mut KernelState) -> bool {
        // Agents are never tick-preempted; they yield by themselves.
        false
    }

    fn has_runnable(&self, cpu: CpuId, _k: &KernelState) -> bool {
        !self.rq[cpu.index()].is_empty()
    }
}

/// A minimal SCHED_FIFO-style real-time class: per-CPU FIFO runqueues,
/// wakeup placement on the previous CPU if free, otherwise the first idle
/// allowed CPU. `ghost-baselines` replaces this slot with MicroQuanta for
/// the Snap experiments.
pub struct RtFifoClass {
    rq: Vec<VecDeque<Tid>>,
}

impl RtFifoClass {
    /// Creates the class for a machine with `num_cpus` CPUs.
    pub fn new(num_cpus: usize) -> Self {
        Self {
            rq: vec![VecDeque::new(); num_cpus],
        }
    }

    fn select_cpu(&self, tid: Tid, k: &KernelState) -> CpuId {
        let t = &k.threads[tid.index()];
        if let Some(prev) = t.last_cpu {
            if t.affinity.contains(prev) && k.cpus[prev.index()].is_idle() {
                return prev;
            }
        }
        for c in t.affinity.iter() {
            if k.cpus[c.index()].is_idle() {
                return c;
            }
        }
        // All busy: shortest queue among allowed CPUs.
        t.affinity
            .iter()
            .min_by_key(|c| self.rq[c.index()].len())
            .expect("thread must have a non-empty affinity")
    }
}

impl SchedClass for RtFifoClass {
    fn name(&self) -> &'static str {
        "rt-fifo"
    }

    fn enqueue(&mut self, tid: Tid, k: &mut KernelState) -> Option<CpuId> {
        let cpu = self.select_cpu(tid, k);
        self.rq[cpu.index()].push_back(tid);
        Some(cpu)
    }

    fn dequeue(&mut self, tid: Tid, _k: &mut KernelState) {
        for q in &mut self.rq {
            q.retain(|&t| t != tid);
        }
    }

    fn pick_next(&mut self, cpu: CpuId, _k: &mut KernelState) -> Option<Tid> {
        self.rq[cpu.index()].pop_front()
    }

    fn put_prev(&mut self, tid: Tid, cpu: CpuId, still_runnable: bool, _k: &mut KernelState) {
        if still_runnable {
            self.rq[cpu.index()].push_back(tid);
        }
    }

    fn on_tick(&mut self, _cpu: CpuId, _current: Tid, _k: &mut KernelState) -> bool {
        false
    }

    fn has_runnable(&self, cpu: CpuId, _k: &KernelState) -> bool {
        !self.rq[cpu.index()].is_empty()
    }
}
