//! Fig. 5: the scalability of a global agent — committed transactions
//! per second vs. number of scheduled CPUs, on the Skylake (112 CPU) and
//! Haswell (72 CPU) machines.
//!
//! The printed series reproduces the paper's three regimes:
//! ❶ ramp-up, ❷ a drop once the agent's SMT sibling runs work, and
//! ❸ a decline across the NUMA boundary. Peak throughput must exceed
//! 1.5 M txn/s (paper: "over 2 million"; see EXPERIMENTS.md for the
//! absolute-number discussion).

use ghost_bench::fig5;
use ghost_metrics::Table;
use ghost_sim::topology::Topology;

fn run_machine(name: &str, topo: Topology) -> Vec<fig5::Fig5Point> {
    let work = fig5::work_for(&topo);
    let points = fig5::run_sweep(topo, work, true);
    let mut t = Table::new(vec!["scheduled CPUs", "M txns/s"])
        .with_title(format!("Fig. 5 ({name}): global agent scalability"));
    for p in &points {
        t.row(vec![
            p.cpus.to_string(),
            format!("{:.3}", p.txns_per_sec / 1e6),
        ]);
    }
    t.print();
    println!();
    points
}

fn main() {
    let skylake = run_machine("Skylake, 112 CPUs", Topology::skylake_112());
    let haswell = run_machine("Haswell, 72 CPUs", Topology::haswell_72());

    for (name, points, socket_cpus) in [
        ("skylake", &skylake, 56usize),
        ("haswell", &haswell, 36usize),
    ] {
        let at = |n: usize| -> f64 {
            points
                .iter()
                .filter(|p| p.cpus <= n)
                .map(|p| p.txns_per_sec)
                .fold(0.0, f64::max)
        };
        let peak_local = at(socket_cpus - 2); // ❶ peak before the sibling joins.
        let after_sibling = points
            .iter()
            .find(|p| p.cpus >= socket_cpus - 1 && p.cpus <= socket_cpus + 1)
            .map(|p| p.txns_per_sec)
            .unwrap_or(0.0);
        let last = points.last().expect("points").txns_per_sec;

        // ❶ Ramp: the single-CPU point is far below the peak.
        let first = points.first().expect("points").txns_per_sec;
        assert!(
            peak_local > 10.0 * first,
            "{name}: no ramp-up ({first} -> {peak_local})"
        );
        // ❷ Drop at SMT co-location.
        assert!(
            after_sibling < peak_local * 0.99,
            "{name}: no SMT drop (peak {peak_local:.0} -> sibling {after_sibling:.0})"
        );
        // ❸ Cross-socket decline: the full-machine point is below the
        // local-socket peak.
        assert!(
            last < peak_local * 0.95,
            "{name}: no NUMA decline (peak {peak_local:.0} -> last {last:.0})"
        );
        println!(
            "{name}: ramp to {:.2} M/s, SMT drop to {:.2} M/s, cross-socket floor {:.2} M/s  -- shape OK",
            peak_local / 1e6,
            after_sibling / 1e6,
            last / 1e6
        );
    }
    // Peak throughput claim (paper: >2 M with all overheads amortized).
    let peak = skylake.iter().map(|p| p.txns_per_sec).fold(0.0, f64::max);
    assert!(
        peak > 1.5e6,
        "Skylake peak should exceed 1.5 M txn/s, got {peak:.0}"
    );
    println!("Skylake peak: {:.2} M txn/s (paper: >2 M)", peak / 1e6);
}
