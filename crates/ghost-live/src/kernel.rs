//! The live kernel: orchestration of real OS threads behind the
//! [`GhostBackend`] trait.
//!
//! A [`LiveKernel`] owns the shared [`LiveState`], a timer thread (the
//! live analogue of the DES event queue's timer events: driver timers for
//! the §3.4 watchdog and standby respawn, delayed wakes, resched IPIs
//! with propagation delay, and periodic tick delivery), and the agent OS
//! threads spawned per enclave CPU. Worker threads are registered by the
//! embedding service (see [`crate::kv`]) and scheduled by an unmodified
//! [`ghost_core::GhostPolicy`]: the policy's transaction commits arrive
//! through `ghost-core`'s normal commit path, which calls
//! [`GhostBackend::send_ipi`]; the live backend turns that into a
//! dispatch that unparks the committed worker on its lane.

use crate::kv::{worker_main, KvService};
use crate::ring::SpscConsumer;
use crate::state::{LiveState, LiveStats, TimerEntry, WakeSignal};
use crate::worker::{WorkerCmd, WorkerCtl};
use ghost_core::policy::GhostPolicy;
use ghost_core::{EnclaveConfig, EnclaveHandle, GhostBackend, GhostRuntime};
use ghost_sim::agent::AgentOutcome;
use ghost_sim::costs::CostModel;
use ghost_sim::cpuset::CpuSet;
use ghost_sim::faults::{FaultKind, FaultPlan};
use ghost_sim::thread::{ThreadKind, ThreadState, Tid};
use ghost_sim::time::{Nanos, MILLIS};
use ghost_sim::topology::{CpuId, Topology};
use ghost_trace::{TraceEvent, TraceRecord, TraceSink};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Longest the timer thread sleeps with nothing scheduled; bounds how
/// stale its view of "due" can get if a notify is missed.
const TIMER_IDLE_SLEEP: Duration = Duration::from_millis(1);

/// How long a spinning agent waits for a signal-ring nudge before
/// re-polling its queues anyway. Bounds message latency for queues
/// configured without agent wakeup (`WakeMode::Polled`).
const SPIN_POLL: Duration = Duration::from_micros(200);

/// Configuration for a live kernel.
pub struct LiveConfig {
    /// Number of logical CPU lanes the enclave(s) can schedule onto.
    pub cpus: usize,
    /// RNG seed (for randomized policies).
    pub seed: u64,
    /// Trace sink; use [`TraceSink::recording`] to run the invariant
    /// checker over the live execution.
    pub trace: TraceSink,
    /// Tick period for `CPU_TICK` delivery; 0 disables ticks.
    pub tick_ns: Nanos,
    /// Cost model (agents charge decision costs against it; in the live
    /// backend the charges are bookkeeping only — real compute is real).
    pub costs: CostModel,
    /// Deterministic fault schedule, with `at`/`dur` in wall-clock
    /// nanoseconds since kernel start. Window faults gate the backend's
    /// fault hooks; one-shot faults fire from the timer thread.
    pub faults: FaultPlan,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            cpus: 4,
            seed: 1,
            trace: TraceSink::Null,
            tick_ns: MILLIS,
            costs: CostModel::default(),
            faults: FaultPlan::none(),
        }
    }
}

pub(crate) struct LiveShared {
    pub(crate) state: Mutex<LiveState>,
}

/// A kernel scheduling real OS threads through the ghOSt runtime.
pub struct LiveKernel {
    shared: Arc<LiveShared>,
    runtime: GhostRuntime,
    timer: Option<JoinHandle<()>>,
}

impl LiveKernel {
    /// Builds the live kernel: state, runtime, and timer thread.
    pub fn new(config: LiveConfig) -> Self {
        let n = config.cpus.max(1) as u16;
        let topo = Topology::new("live", 1, n, 1, n);
        let runtime = GhostRuntime::new(topo.num_cpus());
        let mut state = LiveState::new(topo, config.costs, config.trace, config.seed);
        state.runtime = Some(runtime.clone());
        state.install_faults(config.faults);
        let shared = Arc::new(LiveShared {
            state: Mutex::new(state),
        });

        // Agents created through the trait (enclave launch, §3.4 standby
        // respawn) get real OS threads via this hook.
        {
            let weak = Arc::downgrade(&shared);
            let rt = runtime.clone();
            let spawner = move |tid: Tid, cpu: CpuId, ring: SpscConsumer<WakeSignal>| {
                let Some(shared) = weak.upgrade() else {
                    return std::thread::spawn(|| {});
                };
                let rt = rt.clone();
                std::thread::Builder::new()
                    .name(format!("ghost-agent-{}", tid.0))
                    .spawn(move || agent_main(shared, rt, tid, cpu, ring))
                    .expect("spawn agent thread")
            };
            shared.state.lock().unwrap().agent_spawner = Some(Arc::new(spawner));
        }

        let timer = {
            let shared = Arc::clone(&shared);
            let rt = runtime.clone();
            let tick_ns = config.tick_ns;
            std::thread::Builder::new()
                .name("ghost-live-timer".into())
                .spawn(move || timer_main(shared, rt, tick_ns))
                .expect("spawn timer thread")
        };

        Self {
            shared,
            runtime,
            timer: Some(timer),
        }
    }

    /// The ghOSt runtime driving this kernel.
    pub fn runtime(&self) -> &GhostRuntime {
        &self.runtime
    }

    /// Creates an enclave over `cpus` and spawns its agents as real OS
    /// threads (the live analogue of `GhostRuntime::launch_enclave`).
    pub fn launch_enclave(
        &self,
        cpus: CpuSet,
        config: EnclaveConfig,
        policy: Box<dyn GhostPolicy>,
    ) -> EnclaveHandle {
        let id = self.runtime.create_enclave(cpus, config, policy);
        {
            let mut st = self.shared.state.lock().unwrap();
            self.runtime.spawn_agents_backend(&mut *st, id);
            st.settle();
        }
        self.runtime.handle(id)
    }

    /// Registers and starts a worker OS thread serving `kv`. The thread
    /// starts blocked and unmanaged; [`LiveKernel::attach`] +
    /// [`LiveKernel::wake`] hand it to a policy.
    pub fn spawn_kv_worker(&self, name: &str, kv: Arc<KvService>) -> Tid {
        let (tid, ctl) = {
            let mut st = self.shared.state.lock().unwrap();
            st.add_worker(name)
        };
        let shared = Arc::clone(&self.shared);
        let rt = self.runtime.clone();
        let join = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || worker_main(shared, rt, kv, tid, ctl))
            .expect("spawn worker thread");
        self.shared.state.lock().unwrap().set_join(tid, join);
        tid
    }

    /// Attaches a worker to an enclave (START_GHOST).
    pub fn attach(&self, handle: &EnclaveHandle, tid: Tid) {
        let mut st = self.shared.state.lock().unwrap();
        handle.attach_thread(&mut *st, tid);
        st.settle();
    }

    /// Wakes a thread.
    pub fn wake(&self, tid: Tid) {
        let mut st = self.shared.state.lock().unwrap();
        GhostBackend::wake(&mut *st, tid);
        st.settle();
    }

    /// Wakes the first currently-blocked thread among `tids`; returns
    /// false if none is blocked (open-loop load generators use this to
    /// kick capacity only when there is some).
    pub fn wake_one_blocked(&self, tids: &[Tid]) -> bool {
        let mut st = self.shared.state.lock().unwrap();
        let Some(&tid) = tids
            .iter()
            .find(|t| st.threads[t.index()].state == ThreadState::Blocked)
        else {
            return false;
        };
        GhostBackend::wake(&mut *st, tid);
        st.settle();
        true
    }

    /// Kills a thread (workers, or agents to exercise §3.4 failover).
    pub fn kill(&self, tid: Tid) {
        let mut st = self.shared.state.lock().unwrap();
        GhostBackend::kill(&mut *st, tid);
        st.settle();
    }

    /// Current backend time (monotonic nanoseconds since kernel start).
    pub fn now(&self) -> Nanos {
        self.shared.state.lock().unwrap().now()
    }

    /// Live-backend counters.
    pub fn stats(&self) -> LiveStats {
        self.shared.state.lock().unwrap().stats
    }

    /// Snapshot of the trace recorded so far.
    pub fn trace_snapshot(&self) -> Vec<TraceRecord> {
        self.shared.state.lock().unwrap().trace.snapshot()
    }

    /// Snapshot of every registered thread (tid, backend view), for
    /// liveness oracles: a chaos run asserts no workload thread is left
    /// stranded (runnable but never dispatched) past the grace window.
    pub fn thread_snapshots(&self) -> Vec<(Tid, ghost_core::BackendThread)> {
        let st = self.shared.state.lock().unwrap();
        (0..st.threads.len())
            .map(|i| {
                let tid = Tid(i as u32);
                (tid, GhostBackend::thread(&*st, tid))
            })
            .collect()
    }

    /// Stops every managed OS thread and joins them. Consumes the kernel.
    pub fn shutdown(mut self) {
        let joins: Vec<JoinHandle<()>> = {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            for t in &st.threads {
                t.ctl.set_preempt();
                t.ctl.post(WorkerCmd::Exit);
            }
            st.timer_cv.notify_all();
            st.threads
                .iter_mut()
                .filter_map(|t| t.join.take())
                .collect()
        };
        if let Some(timer) = self.timer.take() {
            let _ = timer.join();
        }
        for join in joins {
            let _ = join.join();
        }
    }
}

impl Drop for LiveKernel {
    fn drop(&mut self) {
        // `shutdown()` consumed self normally; this path covers panics and
        // forgotten shutdowns so worker threads never outlive the kernel.
        if self.timer.is_none() {
            return;
        }
        let joins: Vec<JoinHandle<()>> = {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            for t in &st.threads {
                t.ctl.set_preempt();
                t.ctl.post(WorkerCmd::Exit);
            }
            st.timer_cv.notify_all();
            st.threads
                .iter_mut()
                .filter_map(|t| t.join.take())
                .collect()
        };
        if let Some(timer) = self.timer.take() {
            let _ = timer.join();
        }
        for join in joins {
            let _ = join.join();
        }
    }
}

/// The timer thread: fires due heap entries (wakes, IPIs, driver timers,
/// agent re-activations) and delivers periodic ticks to busy lanes. It
/// sleeps on the state mutex's condvar, so arming an earlier timer from
/// any thread wakes it immediately.
fn timer_main(shared: Arc<LiveShared>, rt: GhostRuntime, tick_ns: Nanos) {
    let mut st = shared.state.lock().unwrap();
    let mut next_tick = if tick_ns > 0 {
        st.now() + tick_ns
    } else {
        Nanos::MAX
    };
    loop {
        if st.shutdown {
            return;
        }
        let now = st.now();
        for entry in st.take_due_timers(now) {
            match entry {
                TimerEntry::Driver(key) => rt.hook_timer(&mut *st, key),
                TimerEntry::AgentLoop(tid) => {
                    let t = &st.threads[tid.index()];
                    if t.kind == ThreadKind::Agent && t.state != ThreadState::Dead {
                        let cpu = t.affinity.iter().next().unwrap_or(CpuId(0));
                        t.ctl.post(WorkerCmd::Run { cpu });
                    }
                }
                TimerEntry::Fault(idx) => {
                    // One-shot fault dispatch, mirroring the DES's
                    // `handle_fault`: apply the kernel-level effect, then
                    // forward to the runtime (which interprets Upgrade).
                    let kind = st.faults.events[idx].kind.clone();
                    st.stats.faults_injected += 1;
                    match kind {
                        FaultKind::AgentCrash { cpu } => {
                            if let Some(victim) = st.agent_on(cpu) {
                                // The agent's real OS thread exits at its
                                // next mailbox check; §3.4 failover
                                // (fallback/standby respawn) runs inside
                                // this settle via hook_agent_killed.
                                GhostBackend::kill(&mut *st, victim);
                            }
                        }
                        FaultKind::SpuriousWakeup { nth } => {
                            if let Some(t) = st.nth_live_workload(nth) {
                                GhostBackend::wake(&mut *st, t);
                            }
                        }
                        _ => {}
                    }
                    rt.hook_fault(&mut *st, &kind);
                }
                // Wakes and IPIs were folded into the deferred buffers.
                TimerEntry::Wake(_) | TimerEntry::Resched(_) => {}
            }
        }
        st.settle();
        if now >= next_tick {
            // Every lane, busy or idle — exactly like the DES's periodic
            // `Ev::Tick`. For `deliver_ticks` enclaves this posts a
            // `TIMER_TICK` that wakes parked per-CPU agents, the liveness
            // backstop that lets them drain runqueues populated remotely
            // (e.g. by the default-queue agent placing new threads).
            for i in 0..st.cpus.len() {
                let cpu = CpuId(i as u16);
                st.trace
                    .emit(now, cpu.0, || TraceEvent::TickDelivered { cpu: cpu.0 });
                rt.hook_tick(&mut *st, cpu);
            }
            st.settle();
            next_tick = now + tick_ns;
        }
        let deadline = st.next_deadline().unwrap_or(Nanos::MAX).min(next_tick);
        let sleep = if deadline == Nanos::MAX {
            TIMER_IDLE_SLEEP
        } else {
            Duration::from_nanos(deadline.saturating_sub(st.now()).min(MILLIS))
        };
        let cv = Arc::clone(&st.timer_cv);
        let (guard, _) = cv.wait_timeout(st, sleep).unwrap();
        st = guard;
    }
}

/// An agent OS thread: waits for its command mailbox, then runs
/// activations via [`GhostRuntime::hook_run_agent`] until the policy
/// blocks. Spin outcomes wait on the agent's lock-free signal ring (with
/// a bounded poll fallback); block outcomes park with a lost-wakeup-proof
/// epoch check under the state lock.
pub(crate) fn agent_main(
    shared: Arc<LiveShared>,
    rt: GhostRuntime,
    tid: Tid,
    cpu: CpuId,
    ring: SpscConsumer<WakeSignal>,
) {
    let ctl: Arc<WorkerCtl> = {
        let st = shared.state.lock().unwrap();
        Arc::clone(&st.threads[tid.index()].ctl)
    };
    'outer: loop {
        match ctl.wait() {
            WorkerCmd::Exit => break,
            WorkerCmd::Run { .. } => {}
            // Agents are never shed or parked externally.
            WorkerCmd::Park | WorkerCmd::Free => continue,
        }
        loop {
            let (cmd, epoch) = ctl.peek();
            if cmd == WorkerCmd::Exit {
                break 'outer;
            }
            ring.drain();
            let (outcome, stall_ns) = {
                let mut st = shared.state.lock().unwrap();
                if st.shutdown || st.threads[tid.index()].state == ThreadState::Dead {
                    break 'outer;
                }
                if st.threads[tid.index()].state == ThreadState::Blocked {
                    st.threads[tid.index()].state = ThreadState::Runnable;
                }
                let out = rt.hook_run_agent(&mut *st, tid, cpu);
                st.settle();
                // An open AgentSlow window stretches the loop for real:
                // the runtime already multiplied the modelled `busy`, and
                // the stall below burns that stretched time wall-clock
                // (outside the lock, bounded so Exit stays responsive).
                let stall = if GhostBackend::fault_agent_slow_factor(&*st, cpu) > 1 {
                    let busy = match out {
                        AgentOutcome::Block { busy }
                        | AgentOutcome::Yield { busy }
                        | AgentOutcome::Spin { busy, .. } => busy,
                    };
                    let stall = busy.min(5 * MILLIS);
                    st.stats.fault_stall_ns += stall;
                    stall
                } else {
                    0
                };
                (out, stall)
            };
            if stall_ns > 0 {
                std::thread::sleep(Duration::from_nanos(stall_ns));
            }
            match outcome {
                AgentOutcome::Block { .. } => {
                    let parked = {
                        let mut st = shared.state.lock().unwrap();
                        // A parking agent reschedules its own CPU: commits
                        // targeting the agent's CPU send no IPI (the DES
                        // dispatches them when the agent blocks), so the
                        // slot would otherwise never be consumed.
                        st.request_resched(cpu);
                        st.settle();
                        // Atomic wrt wakers (they hold the state lock when
                        // posting): park only if no wake raced in since
                        // this activation started.
                        let parked = ctl.park_if_quiet(epoch);
                        if parked && st.threads[tid.index()].state == ThreadState::Runnable {
                            st.threads[tid.index()].state = ThreadState::Blocked;
                        }
                        parked
                    };
                    if parked {
                        continue 'outer;
                    }
                }
                AgentOutcome::Yield { .. } => std::thread::yield_now(),
                AgentOutcome::Spin { next, .. } => {
                    if !ring.is_empty() {
                        continue; // Work already signaled; re-activate now.
                    }
                    let now = {
                        let st = shared.state.lock().unwrap();
                        st.now()
                    };
                    let timeout = match next {
                        Some(at) => Duration::from_nanos(at.saturating_sub(now).max(10_000)),
                        None => SPIN_POLL,
                    };
                    // `epoch` is from before the activation: any nudge or
                    // wake that landed since (including from our own
                    // settle) returns immediately instead of sleeping
                    // through a fresh message.
                    ctl.wait_nudge(epoch, timeout.min(Duration::from_millis(5)));
                }
            }
        }
    }
}
