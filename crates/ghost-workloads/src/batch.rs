//! Batch / antagonist threads: CPU-hungry best-effort work that soaks up
//! whatever cycles the scheduler gives it (§4.2's batch app, §4.3's 40
//! antagonist threads).

use ghost_sim::app::{App, AppId, Next};
use ghost_sim::kernel::KernelState;
use ghost_sim::thread::Tid;
use ghost_sim::time::{Nanos, MILLIS};

/// An app whose threads run forever in fixed-size chunks.
pub struct BatchApp {
    threads: Vec<Tid>,
    chunk: Nanos,
    app_id: AppId,
}

impl BatchApp {
    /// Creates the app; `chunk` is the segment size between scheduler
    /// interactions (1 ms default keeps event counts low while staying
    /// preemptible).
    pub fn new(app_id: AppId) -> Self {
        Self {
            threads: Vec::new(),
            chunk: MILLIS,
            app_id,
        }
    }

    /// Registers a batch thread.
    pub fn add_thread(&mut self, tid: Tid) {
        self.threads.push(tid);
    }

    /// Wakes every batch thread with an initial chunk.
    pub fn start(&self, k: &mut KernelState) {
        let _ = self.app_id;
        for &tid in &self.threads {
            k.thread_mut(tid).remaining = self.chunk;
            k.wake(tid);
        }
    }

    /// Total CPU time consumed by all batch threads.
    pub fn total_cpu(&self, k: &KernelState) -> Nanos {
        self.threads
            .iter()
            .map(|&t| k.threads[t.index()].total_oncpu)
            .sum()
    }
}

impl App for BatchApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "batch"
    }

    fn on_timer(&mut self, _key: u64, _k: &mut KernelState) {}

    fn on_segment_end(&mut self, _tid: Tid, _k: &mut KernelState) -> Next {
        Next::Run { dur: self.chunk }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_sim::kernel::{Kernel, KernelConfig, ThreadSpec};
    use ghost_sim::time::SECS;
    use ghost_sim::topology::Topology;

    #[test]
    fn batch_threads_consume_idle_cpu() {
        let mut kernel = Kernel::new(Topology::test_small(2), KernelConfig::default());
        let app_id = kernel.state.next_app_id();
        let mut app = BatchApp::new(app_id);
        for i in 0..2 {
            let t = kernel
                .spawn(ThreadSpec::workload(&format!("batch{i}"), &kernel.state.topo).app(app_id));
            app.add_thread(t);
        }
        app.start(&mut kernel.state);
        let total_before = app.total_cpu(&kernel.state);
        kernel.add_app(Box::new(app));
        kernel.run_until(SECS);
        // Pull the app back out for measurement via kernel state.
        let total: Nanos = (0..kernel.state.threads.len())
            .map(|i| kernel.state.threads[i].total_oncpu)
            .sum();
        assert_eq!(total_before, 0);
        assert!(total > SECS * 19 / 10, "2 spinners on idle CPUs: {total}");
    }
}
