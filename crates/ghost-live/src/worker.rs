//! Per-thread command channels: how the live kernel parks and unparks the
//! real OS threads it manages.
//!
//! Each managed thread (worker or agent) owns a [`WorkerCtl`]: a tiny
//! command mailbox plus a preemption flag. The live kernel writes commands
//! while holding its state lock; the thread waits on the mailbox's own
//! condvar. Because every command write happens under the kernel state
//! lock, command transitions are totally ordered with the scheduling
//! decisions that caused them — the classic lost-wakeup race (thread
//! decides to park while a wake is in flight) cannot happen, which the
//! `epoch` counter makes checkable: a parking thread re-parks only if no
//! wake arrived since it last looked.

use ghost_sim::topology::CpuId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What a managed OS thread should be doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerCmd {
    /// Sleep until told otherwise.
    Park,
    /// Run a scheduling stint on `cpu` (workers), or run activations
    /// (agents, where `cpu` is the agent's pinned CPU).
    Run { cpu: CpuId },
    /// Run unmanaged: the thread left the ghOSt class (shed to "CFS", which
    /// in the live backend means the host scheduler runs it freely).
    Free,
    /// Exit the thread's main loop.
    Exit,
}

struct Mailbox {
    cmd: WorkerCmd,
    /// Bumped on every [`WorkerCtl::post`]; lets a thread detect wakes
    /// that raced with its decision to park.
    epoch: u64,
}

/// Command mailbox + preempt flag for one managed OS thread.
pub struct WorkerCtl {
    mailbox: Mutex<Mailbox>,
    cv: Condvar,
    preempt: AtomicBool,
}

impl WorkerCtl {
    /// New mailbox, parked.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            mailbox: Mutex::new(Mailbox {
                cmd: WorkerCmd::Park,
                epoch: 0,
            }),
            cv: Condvar::new(),
            preempt: AtomicBool::new(false),
        })
    }

    /// Posts a command and wakes the thread.
    pub fn post(&self, cmd: WorkerCmd) {
        let mut mb = self.mailbox.lock().unwrap();
        mb.cmd = cmd;
        mb.epoch += 1;
        self.cv.notify_all();
    }

    /// Nudges the thread without changing its command (used to re-run a
    /// spinning agent when a signal lands in its ring).
    pub fn nudge(&self) {
        let mut mb = self.mailbox.lock().unwrap();
        mb.epoch += 1;
        self.cv.notify_all();
    }

    /// Current command plus the epoch it was observed at.
    pub fn peek(&self) -> (WorkerCmd, u64) {
        let mb = self.mailbox.lock().unwrap();
        (mb.cmd, mb.epoch)
    }

    /// Blocks until the command is not `Park`, returning it.
    pub fn wait(&self) -> WorkerCmd {
        let mut mb = self.mailbox.lock().unwrap();
        while mb.cmd == WorkerCmd::Park {
            mb = self.cv.wait(mb).unwrap();
        }
        mb.cmd
    }

    /// Blocks until the command is not `Park`, the epoch moves past
    /// `seen_epoch`, or `timeout` elapses. Returns the current command and
    /// epoch. Used by spinning agents: any post or nudge re-runs them,
    /// and the timeout bounds message-poll latency for queues configured
    /// without agent wakeup.
    pub fn wait_nudge(&self, seen_epoch: u64, timeout: Duration) -> (WorkerCmd, u64) {
        let mut mb = self.mailbox.lock().unwrap();
        if mb.cmd == WorkerCmd::Park || mb.epoch != seen_epoch {
            return (mb.cmd, mb.epoch);
        }
        let (guard, _timed_out) = self.cv.wait_timeout(mb, timeout).unwrap();
        mb = guard;
        (mb.cmd, mb.epoch)
    }

    /// Parks the thread only if no wake arrived since `seen_epoch` (the
    /// lost-wakeup guard). Returns true if it parked.
    pub fn park_if_quiet(&self, seen_epoch: u64) -> bool {
        let mut mb = self.mailbox.lock().unwrap();
        if mb.epoch == seen_epoch {
            mb.cmd = WorkerCmd::Park;
            true
        } else {
            false
        }
    }

    /// Raises the preemption flag: the worker ends its stint at the next
    /// request boundary (the live analogue of a resched IPI).
    pub fn set_preempt(&self) {
        self.preempt.store(true, Ordering::Release);
    }

    /// Reads and clears the preemption flag.
    pub fn take_preempt(&self) -> bool {
        self.preempt.swap(false, Ordering::AcqRel)
    }

    /// Reads the preemption flag without clearing it.
    pub fn preempt_pending(&self) -> bool {
        self.preempt.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn park_if_quiet_detects_raced_wake() {
        let ctl = WorkerCtl::new();
        ctl.post(WorkerCmd::Run { cpu: CpuId(0) });
        let (_, epoch) = ctl.peek();
        // A wake lands between the thread's last look and its park.
        ctl.post(WorkerCmd::Run { cpu: CpuId(1) });
        assert!(!ctl.park_if_quiet(epoch));
        // Quiet: parking succeeds.
        let (_, epoch) = ctl.peek();
        assert!(ctl.park_if_quiet(epoch));
        assert_eq!(ctl.peek().0, WorkerCmd::Park);
    }

    #[test]
    fn park_racing_epoch_bump_never_strands_worker() {
        // Regression stress for the missed-wake window: a worker that
        // decides to park (epoch captured at its last peek) while a
        // `Run` post races in must either fail the park or observe the
        // new command on its next wait — it can never end up parked
        // with a missed dispatch. Each round blocks on the worker's
        // progress, so a single lost wake hangs the test rather than
        // flaking past it.
        use std::sync::atomic::AtomicU64;
        const ROUNDS: u64 = 20_000;
        let ctl = WorkerCtl::new();
        let progressed = Arc::new(AtomicU64::new(0));
        let worker = {
            let ctl = Arc::clone(&ctl);
            let progressed = Arc::clone(&progressed);
            std::thread::spawn(move || loop {
                match ctl.wait() {
                    WorkerCmd::Exit => break,
                    WorkerCmd::Run { .. } | WorkerCmd::Free => {
                        // Capture the epoch *before* finishing the stint,
                        // widening the race window the guard must close.
                        let (_, epoch) = ctl.peek();
                        progressed.fetch_add(1, Ordering::AcqRel);
                        std::hint::spin_loop();
                        ctl.park_if_quiet(epoch);
                    }
                    WorkerCmd::Park => {}
                }
            })
        };
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        for round in 1..=ROUNDS {
            ctl.post(WorkerCmd::Run { cpu: CpuId(0) });
            while progressed.load(Ordering::Acquire) < round {
                assert!(
                    std::time::Instant::now() < deadline,
                    "worker stranded: {} of {round} dispatches observed",
                    progressed.load(Ordering::Acquire)
                );
                std::thread::yield_now();
            }
        }
        ctl.post(WorkerCmd::Exit);
        worker.join().unwrap();
        assert_eq!(progressed.load(Ordering::Acquire), ROUNDS);
    }

    #[test]
    fn nudge_interrupts_wait_nudge_exactly_when_epoch_moved() {
        let ctl = WorkerCtl::new();
        ctl.post(WorkerCmd::Run { cpu: CpuId(0) });
        let (_, epoch) = ctl.peek();
        // Nudge already landed: returns immediately, no sleep.
        ctl.nudge();
        let start = std::time::Instant::now();
        let (_, e2) = ctl.wait_nudge(epoch, Duration::from_secs(5));
        assert!(start.elapsed() < Duration::from_secs(1));
        assert!(e2 > epoch);
        // Quiet epoch: the wait times out rather than spinning.
        let start = std::time::Instant::now();
        ctl.wait_nudge(e2, Duration::from_millis(10));
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn preempt_flag_is_one_shot() {
        let ctl = WorkerCtl::new();
        assert!(!ctl.take_preempt());
        ctl.set_preempt();
        assert!(ctl.preempt_pending());
        assert!(ctl.take_preempt());
        assert!(!ctl.take_preempt());
    }
}
