//! The parallel sweep engine.
//!
//! An [`Experiment`] is anything that can describe itself (a stable
//! *spec string*) and execute to a hashable [`ExperimentResult`]. A
//! sweep is a slice of experiments; [`run_sweep`] executes them on a
//! pool of `std::thread` workers.
//!
//! # Determinism
//!
//! Each experiment is executed entirely on one worker thread — the
//! simulation inside stays single-threaded, so it is byte-identical to
//! a serial run. Workers claim experiments from a shared atomic index
//! (so the *assignment* of experiments to workers is racy and
//! irrelevant), but results land in slots indexed by the experiment's
//! position in the input slice, so the report order is deterministic.
//! `run_sweep(exps, 1, ..)` and `run_sweep(exps, N, ..)` must therefore
//! return identical results — a property checked by this crate's tests
//! and by CI on the chaos recovery sweep.
//!
//! # Caching
//!
//! With a [`Cache`], each experiment's spec is hashed before execution;
//! hits skip the run entirely and misses are stored after it. The
//! report's `executed`/`cached` counters let callers (and tests) verify
//! that an unchanged sweep re-run executes zero simulations.

use crate::cache::Cache;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Something the engine can run: a self-describing, repeatable unit of
/// work. `Sync` because one immutable instance is shared with every
/// worker thread; `execute` takes `&self` and must build all mutable
/// state (kernel, runtime, workload) from the spec on each call.
pub trait Experiment: Sync {
    /// Human-readable label for reports (e.g. `"shinjuku/seed=7"`).
    fn label(&self) -> String;

    /// Stable, canonical description of *everything* that affects the
    /// outcome. Equal specs must imply equal results — this string is
    /// the cache key and the determinism contract.
    fn spec(&self) -> String;

    /// Runs the experiment. Must be deterministic: same spec, same
    /// result, regardless of which thread executes it.
    fn execute(&self) -> ExperimentResult;
}

/// The outcome of one experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentResult {
    /// Did the experiment meet its own pass criterion?
    pub pass: bool,
    /// Hash of the run's observable output (trace, counters). Two runs
    /// of the same spec must produce the same hash — this is what the
    /// serial-vs-parallel CI check compares.
    pub hash: u64,
    /// Human-readable result lines (counters, failures).
    pub lines: Vec<String>,
}

/// One row of a sweep report.
#[derive(Debug, Clone)]
pub struct SweepItem {
    /// The experiment's label.
    pub label: String,
    /// Its cache key.
    pub key: String,
    /// Its result (executed or loaded from cache).
    pub result: ExperimentResult,
    /// True if the result came from the cache.
    pub cached: bool,
}

/// Everything a finished sweep exposes.
#[derive(Debug)]
pub struct SweepReport {
    /// One item per input experiment, in input order.
    pub items: Vec<SweepItem>,
    /// How many experiments actually executed.
    pub executed: usize,
    /// How many were served from the cache.
    pub cached: usize,
}

impl SweepReport {
    /// True if every experiment passed.
    pub fn all_passed(&self) -> bool {
        self.items.iter().all(|i| i.result.pass)
    }

    /// `label <hash>` lines, one per experiment — the digest compared
    /// between serial and parallel runs in CI.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for item in &self.items {
            out.push_str(&format!("{} {:016x}\n", item.label, item.result.hash));
        }
        out
    }
}

/// Runs every experiment, `jobs` at a time, returning results in input
/// order. `jobs` is clamped to at least 1; a `cache` of `None` disables
/// caching. Panics in an experiment propagate (the worker's panic is
/// resumed on the calling thread), so a failing assertion inside a
/// simulation still fails the sweep loudly.
pub fn run_sweep<E: Experiment>(exps: &[E], jobs: usize, cache: Option<&Cache>) -> SweepReport {
    let jobs = jobs.max(1);

    // Resolve cache hits up front, single-threaded: the filesystem is
    // not part of the determinism argument.
    let mut items: Vec<Option<SweepItem>> = Vec::with_capacity(exps.len());
    let mut pending: Vec<usize> = Vec::new();
    for (i, exp) in exps.iter().enumerate() {
        let key = Cache::key(&exp.spec());
        match cache.and_then(|c| c.load(&key)) {
            Some(result) => items.push(Some(SweepItem {
                label: exp.label(),
                key,
                result,
                cached: true,
            })),
            None => {
                items.push(Some(SweepItem {
                    label: exp.label(),
                    key,
                    result: ExperimentResult {
                        pass: false,
                        hash: 0,
                        lines: Vec::new(),
                    },
                    cached: false,
                }));
                pending.push(i);
            }
        }
    }

    // Worker pool: claim the next pending slot via an atomic counter,
    // run it, store the result in its own indexed cell. No ordering
    // between experiments is assumed anywhere.
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<ExperimentResult>>> =
        pending.iter().map(|_| Mutex::new(None)).collect();
    if !pending.is_empty() {
        std::thread::scope(|scope| {
            let workers = jobs.min(pending.len());
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        if slot >= pending.len() {
                            break;
                        }
                        let result = exps[pending[slot]].execute();
                        *results[slot].lock().unwrap() = Some(result);
                    })
                })
                .collect();
            for h in handles {
                if let Err(panic) = h.join() {
                    std::panic::resume_unwind(panic);
                }
            }
        });
    }

    let executed = pending.len();
    for (slot, idx) in pending.into_iter().enumerate() {
        let result = results[slot]
            .lock()
            .unwrap()
            .take()
            .expect("worker completed every claimed slot");
        let item = items[idx].as_mut().expect("slot populated above");
        if let Some(c) = cache {
            c.store(&item.key, &result);
        }
        item.result = result;
    }

    let items: Vec<SweepItem> = items.into_iter().map(|i| i.expect("populated")).collect();
    let cached = items.len() - executed;
    SweepReport {
        items,
        executed,
        cached,
    }
}

/// Runs `body` once per derived seed, reporting the failing seed on
/// panic so any case can be rerun in isolation. This is the execution
/// core of the seeded property tests (`ghost_chaos::for_seeds!`
/// delegates here): seed derivation, case numbering, and failure
/// reporting live in the engine, next to the sweep runner that shares
/// the same repeat-from-a-seed contract.
pub fn run_cases(base: u64, cases: u64, mut body: impl FnMut(u64)) {
    for case in 0..cases {
        let seed = base.wrapping_add(case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(seed)));
        if let Err(payload) = result {
            eprintln!(
                "run_cases: case {case} of {cases} FAILED with seed {seed:#x} — \
                 rerun with StdRng::seed_from_u64({seed:#x})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    struct Square(u64, AtomicU64);

    impl Experiment for Square {
        fn label(&self) -> String {
            format!("square/{}", self.0)
        }
        fn spec(&self) -> String {
            format!("square v1\nn {}", self.0)
        }
        fn execute(&self) -> ExperimentResult {
            self.1.fetch_add(1, Ordering::Relaxed);
            ExperimentResult {
                pass: true,
                hash: self.0 * self.0,
                lines: vec![format!("value {}", self.0 * self.0)],
            }
        }
    }

    fn squares(n: u64) -> Vec<Square> {
        (0..n).map(|i| Square(i, AtomicU64::new(0))).collect()
    }

    #[test]
    fn results_in_input_order_regardless_of_jobs() {
        let exps = squares(9);
        for jobs in [1, 3, 16] {
            let report = run_sweep(&exps, jobs, None);
            assert_eq!(report.executed, 9);
            for (i, item) in report.items.iter().enumerate() {
                assert_eq!(item.result.hash, (i * i) as u64, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn every_experiment_executes_exactly_once() {
        let exps = squares(7);
        run_sweep(&exps, 4, None);
        for e in &exps {
            assert_eq!(e.1.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn run_cases_derives_sequential_seeds() {
        let mut seen = Vec::new();
        run_cases(0x100, 5, |seed| seen.push(seed));
        assert_eq!(seen, vec![0x100, 0x101, 0x102, 0x103, 0x104]);
    }

    #[test]
    #[should_panic(expected = "case 3 boom")]
    fn run_cases_propagates_panics() {
        run_cases(0, 8, |seed| {
            if seed == 3 {
                panic!("case 3 boom");
            }
        });
    }

    #[test]
    fn empty_sweep_is_fine() {
        let report = run_sweep(&squares(0), 8, None);
        assert!(report.items.is_empty());
        assert_eq!(report.executed, 0);
        assert_eq!(report.cached, 0);
    }
}
