//! The discrete-event queue driving the simulation.
//!
//! [`EventQueue`] is a flat hierarchical timer wheel: 9 levels of 64
//! slots, level 0 at 1024 ns granularity, each level 64× coarser than the
//! one below, so the 9 levels jointly cover the full `u64` nanosecond
//! range with no overflow list. Pushes hash into a slot in O(1); pops
//! drain the earliest slot into a small "near" heap ordered by
//! `(time, insertion seq)`, which preserves the exact pop order of the
//! original `BinaryHeap` implementation — earliest time first, FIFO on
//! ties — so simulation digests are byte-identical to the pre-wheel
//! queue (pinned by `ghost-lab`'s digest-freeze suite and the
//! heap-vs-wheel equivalence property test).

use crate::app::AppId;
use crate::thread::Tid;
use crate::time::Nanos;
use crate::topology::CpuId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event.
///
/// Events that can become stale (because the thing they refer to changed
/// state in the meantime) carry a generation counter checked at dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// A running thread's current work segment completes.
    SegmentEnd { tid: Tid, stint: u64 },
    /// Periodic timer tick on a CPU.
    Tick { cpu: CpuId },
    /// A context switch on `cpu` finishes.
    CtxSwitchDone { cpu: CpuId, seq: u64 },
    /// Re-run the scheduler on `cpu` (e.g., IPI arrival).
    Resched { cpu: CpuId },
    /// Re-activate a spinning agent thread.
    AgentLoop { tid: Tid, gen: u64 },
    /// An agent finishes its work and leaves the CPU: blocking
    /// (`block = true`) or yielding while staying runnable.
    AgentPark { tid: Tid, gen: u64, block: bool },
    /// Wake a thread at a future time.
    Wake { tid: Tid },
    /// A timer armed by an [`crate::app::App`].
    AppTimer { app: AppId, key: u64 },
    /// A timer armed by the [`crate::agent::AgentDriver`].
    DriverTimer { key: u64 },
    /// A one-shot fault from the configured [`crate::faults::FaultPlan`]
    /// fires; `idx` indexes into the plan's events.
    Fault { idx: usize },
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    at: Nanos,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, with the
        // insertion sequence as a deterministic tiebreak.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// log2 of the level-0 slot width: 1024 ns per slot.
const SHIFT0: u32 = 10;
/// log2 of the slots per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of levels. `SHIFT0 + LEVELS * LEVEL_BITS = 64`, so the wheel
/// spans every representable `u64` time and needs no overflow list.
const LEVELS: usize = 9;

/// Earliest-first event queue with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use ghost_sim::event::{Ev, EventQueue};
/// use ghost_sim::topology::CpuId;
///
/// let mut q = EventQueue::new();
/// q.push(20, Ev::Resched { cpu: CpuId(1) });
/// q.push(10, Ev::Resched { cpu: CpuId(0) });
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!(t, 10);
/// assert_eq!(ev, Ev::Resched { cpu: CpuId(0) });
/// ```
#[derive(Debug)]
pub struct EventQueue {
    /// Entries within the current level-0 slot (and any pushed at or
    /// before it), ordered by `(at, seq)`. Always holds the global
    /// minimum when non-empty: every wheel entry is in a strictly later
    /// level-0 slot.
    near: BinaryHeap<Entry>,
    /// `LEVELS * SLOTS` buckets; level `k` slot `i` is `slots[k*SLOTS+i]`.
    slots: Vec<Vec<Entry>>,
    /// One occupancy bitmap word per level.
    occ: [u64; LEVELS],
    /// Start of the level-0 slot the `near` heap currently represents.
    /// Only ever advances; pushes at or before it go straight to `near`.
    cur: Nanos,
    /// Total pending entries (near + all slots).
    len: usize,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            near: BinaryHeap::new(),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            cur: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Schedules `ev` at absolute time `at`.
    pub fn push(&mut self, at: Nanos, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let e = Entry { at, seq, ev };
        if (at >> SHIFT0) <= (self.cur >> SHIFT0) {
            // In (or before) the current near window: the heap keeps
            // order exact even for entries behind `cur`.
            self.near.push(e);
        } else {
            self.place(e);
        }
    }

    /// Buckets a future entry (strictly after the near window). The level
    /// is the highest bit group in which `at` differs from `cur`; because
    /// `at > cur`, the entry's slot index at that level is strictly ahead
    /// of `cur`'s, so a forward scan always finds it.
    fn place(&mut self, e: Entry) {
        let diff = (e.at >> SHIFT0) ^ (self.cur >> SHIFT0);
        debug_assert!(diff != 0);
        let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
        let idx = ((e.at >> (SHIFT0 + LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + idx].push(e);
        self.occ[level] |= 1 << idx;
    }

    /// Advances `cur` to the next occupied slot: loads it into `near` if
    /// it is a level-0 slot, or cascades it into the finer levels below.
    /// Levels are scanned finest-first — every level-`k` entry is earlier
    /// than every level-`k+1` entry, and within a level lower indices are
    /// earlier — so the first occupied slot found is the earliest.
    fn advance(&mut self) {
        'outer: loop {
            for level in 0..LEVELS {
                let shift = SHIFT0 + LEVEL_BITS * level as u32;
                let cur_idx = ((self.cur >> shift) & (SLOTS as u64 - 1)) as u32;
                // Occupied slots at this level are always strictly ahead
                // of cur's index (a behind-or-equal index would differ
                // from cur at a higher level and live there instead).
                let ahead = self.occ[level] & (!0u64).checked_shl(cur_idx + 1).unwrap_or(0);
                if ahead == 0 {
                    continue;
                }
                let idx = ahead.trailing_zeros();
                // cur := start of the found slot (zero everything below
                // this level, keep everything above).
                let above = shift + LEVEL_BITS;
                let high = if above >= 64 {
                    0
                } else {
                    (self.cur >> above) << above
                };
                self.cur = high | ((idx as u64) << shift);
                self.occ[level] &= !(1 << idx);
                let mut batch = std::mem::take(&mut self.slots[level * SLOTS + idx as usize]);
                if level == 0 {
                    self.near.extend(batch.drain(..));
                    // Hand the bucket's capacity back for reuse.
                    self.slots[idx as usize] = batch;
                    return;
                }
                for e in batch.drain(..) {
                    if (e.at >> SHIFT0) == (self.cur >> SHIFT0) {
                        self.near.push(e);
                    } else {
                        self.place(e);
                    }
                }
                self.slots[level * SLOTS + idx as usize] = batch;
                if !self.near.is_empty() {
                    return;
                }
                continue 'outer;
            }
            unreachable!("advance() called with no pending entries");
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, Ev)> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        loop {
            if let Some(e) = self.near.pop() {
                return Some((e.at, e.ev));
            }
            self.advance();
        }
    }

    /// Time of the earliest event without removing it. May rotate the
    /// wheel internally, which never changes pop order.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        if self.len == 0 {
            return None;
        }
        loop {
            if let Some(e) = self.near.peek() {
                return Some(e.at);
            }
            self.advance();
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Ev::Wake { tid: Tid(3) });
        q.push(10, Ev::Wake { tid: Tid(1) });
        q.push(20, Ev::Wake { tid: Tid(2) });
        let order: Vec<Nanos> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(5, Ev::Wake { tid: Tid(1) });
        q.push(5, Ev::Wake { tid: Tid(2) });
        q.push(5, Ev::Wake { tid: Tid(3) });
        let order: Vec<Tid> = std::iter::from_fn(|| {
            q.pop().map(|(_, ev)| match ev {
                Ev::Wake { tid } => tid,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![Tid(1), Tid(2), Tid(3)]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(7, Ev::Tick { cpu: CpuId(0) });
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn ties_break_fifo_across_slots_and_levels() {
        // Same deadline, pushed while the wheel is at different
        // positions: the second batch lands after the wheel advanced.
        let mut q = EventQueue::new();
        let t = 1 << 20; // level-1 territory from cur = 0
        q.push(t, Ev::Wake { tid: Tid(1) });
        q.push(100, Ev::Wake { tid: Tid(0) });
        assert_eq!(q.pop().unwrap().0, 100); // advances cur
        q.push(t, Ev::Wake { tid: Tid(2) }); // now level-0/near territory
        q.push(t, Ev::Wake { tid: Tid(3) });
        let order: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|(_, ev)| match ev {
                Ev::Wake { tid } => tid.0,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn far_future_events_cascade_correctly() {
        let mut q = EventQueue::new();
        // One event per level's range, inserted in reverse order.
        let times: Vec<Nanos> = (0..9).rev().map(|k| 1u64 << (SHIFT0 + 6 * k)).collect();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, Ev::Wake { tid: Tid(i as u32) });
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let popped: Vec<Nanos> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(popped, sorted);
        assert!(q.is_empty());
    }

    #[test]
    fn pushes_behind_current_position_still_pop_first() {
        let mut q = EventQueue::new();
        q.push(1 << 30, Ev::Wake { tid: Tid(0) });
        q.push(1 << 31, Ev::Wake { tid: Tid(1) });
        assert_eq!(q.pop().unwrap().0, 1 << 30);
        // The wheel has advanced far; a push behind it must still come
        // out before the remaining future event.
        q.push(5, Ev::Wake { tid: Tid(2) });
        assert_eq!(q.pop().unwrap().0, 5);
        assert_eq!(q.pop().unwrap().0, 1 << 31);
    }

    #[test]
    fn interleaved_push_pop_at_same_time() {
        // A handler pushing at the time it is handling (delta = 0) must
        // see its event pop after all already-queued same-time events.
        let mut q = EventQueue::new();
        q.push(50, Ev::Wake { tid: Tid(1) });
        q.push(50, Ev::Wake { tid: Tid(2) });
        let (t, ev) = q.pop().unwrap();
        assert_eq!((t, ev), (50, Ev::Wake { tid: Tid(1) }));
        q.push(50, Ev::Wake { tid: Tid(3) });
        assert_eq!(q.pop().unwrap().1, Ev::Wake { tid: Tid(2) });
        assert_eq!(q.pop().unwrap().1, Ev::Wake { tid: Tid(3) });
        assert!(q.pop().is_none());
    }

    #[test]
    fn u64_extremes_are_representable() {
        let mut q = EventQueue::new();
        q.push(u64::MAX, Ev::Wake { tid: Tid(1) });
        q.push(0, Ev::Wake { tid: Tid(0) });
        q.push(u64::MAX - 1, Ev::Wake { tid: Tid(2) });
        assert_eq!(q.pop().unwrap().0, 0);
        assert_eq!(q.pop().unwrap().0, u64::MAX - 1);
        assert_eq!(q.pop().unwrap().0, u64::MAX);
        assert!(q.is_empty());
    }
}
