//! The per-CPU scheduling model (§3.2, Fig. 3): every CPU has its own
//! agent and message queue; each agent schedules only its own CPU by
//! committing local transactions guarded by its `Aseq`.
//!
//! New threads arrive on the default queue (handled by the first CPU's
//! agent), which load-balances them across per-CPU queues with
//! `ASSOCIATE_QUEUE()` — the thread-to-queue re-routing of §3.1.

use crate::tracker::ThreadTracker;
use ghost_core::msg::{Message, MsgType};
use ghost_core::policy::{GhostPolicy, PolicyCtx};
use ghost_core::slab::{CpuMap, TidMap};
use ghost_core::txn::Transaction;
use ghost_sim::thread::Tid;
use ghost_sim::topology::CpuId;
use std::collections::VecDeque;

/// Per-CPU FIFO scheduling with message-queue-based load distribution.
pub struct PerCpuPolicy {
    tracker: ThreadTracker,
    /// Per-CPU runqueues, dense in the topology's CPU id space.
    rqs: CpuMap<VecDeque<Tid>>,
    /// Thread → home CPU assignment.
    home: TidMap<CpuId>,
    /// Round-robin cursor for placing new threads.
    next_cpu: usize,
    /// Commit statistics.
    pub commits: u64,
    /// Failed commits (ESTALE etc.), retried on the next activation.
    pub failures: u64,
    /// Threads stolen from peer runqueues.
    pub steals: u64,
}

impl PerCpuPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self {
            tracker: ThreadTracker::new(),
            rqs: CpuMap::new(),
            home: TidMap::new(),
            next_cpu: 0,
            commits: 0,
            failures: 0,
            steals: 0,
        }
    }

    fn rq(&mut self, cpu: CpuId) -> &mut VecDeque<Tid> {
        self.rqs.or_insert(cpu, VecDeque::new())
    }

    fn place_new_thread(&mut self, tid: Tid, ctx: &mut PolicyCtx<'_>) -> CpuId {
        // Round-robin across enclave CPUs, skipping the busiest.
        let cpus: Vec<CpuId> = ctx.enclave_cpus().iter().collect();
        let cpu = cpus[self.next_cpu % cpus.len()];
        self.next_cpu += 1;
        self.home.insert(tid, cpu);
        // Reroute the thread's messages to that CPU's queue. If messages
        // are pending the association fails (§3.1); the thread stays on
        // the current queue and we retry at its next message.
        let q = ctx.queue_of_cpu(cpu);
        ctx.associate_queue(tid, q);
        cpu
    }
}

impl PerCpuPolicy {
    /// Work stealing (§3.1: "to enable load-balancing and work-stealing
    /// between CPUs, agents can change the routing of messages from
    /// threads to queues via ASSOCIATE_QUEUE()"): an idle CPU's agent
    /// takes a waiting thread from the longest peer runqueue, re-homes
    /// it, and reroutes its future messages to the local queue.
    fn steal_for(&mut self, thief: CpuId, ctx: &mut PolicyCtx<'_>) {
        let Some((victim_cpu, _)) = self
            .rqs
            .iter()
            .filter(|&(c, q)| c != thief && q.len() >= 2)
            // Lowest-CPU tiebreak: equal queue depths must not be
            // settled by the map's iteration order, or replays diverge.
            .max_by_key(|&(c, q)| (q.len(), std::cmp::Reverse(c.0)))
        else {
            return;
        };
        let Some(tid) = self.rqs.get_mut(victim_cpu).and_then(VecDeque::pop_front) else {
            return;
        };
        self.home.insert(tid, thief);
        self.rq(thief).push_back(tid);
        self.steals += 1;
        // Reroute the thread's message stream; if messages are pending
        // the association fails (§3.1) and we retry at its next message.
        let q = ctx.queue_of_cpu(thief);
        ctx.charge(100);
        ctx.associate_queue(tid, q);
    }
}

impl Default for PerCpuPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl GhostPolicy for PerCpuPolicy {
    fn name(&self) -> &str {
        "per-cpu-fifo"
    }

    fn on_msg(&mut self, msg: &Message, ctx: &mut PolicyCtx<'_>) {
        let Some(view) = self.tracker.apply(msg) else {
            return;
        };
        if msg.ty == MsgType::ThreadCreated {
            self.place_new_thread(msg.tid, ctx);
            return;
        }
        let home = *self.home.or_insert(msg.tid, ctx.local_cpu());
        if view.dead {
            self.rq(home).retain(|&t| t != msg.tid);
            self.home.remove(msg.tid);
        } else if view.runnable {
            let rq = self.rq(home);
            if !rq.contains(&msg.tid) {
                rq.push_back(msg.tid);
            }
        } else {
            self.rq(home).retain(|&t| t != msg.tid);
        }
    }

    fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
        // Fig. 3: schedule the local CPU only, guarded by Aseq.
        let cpu = ctx.local_cpu();
        let aseq = ctx.agent_seq();
        if self.rq(cpu).is_empty() {
            self.steal_for(cpu, ctx);
        }
        let Some(next) = self.rq(cpu).pop_front() else {
            return;
        };
        let mut txn = Transaction::new(next, cpu).with_agent_seq(aseq);
        if ctx.commit_one(&mut txn).committed() {
            self.commits += 1;
            self.tracker.mark_scheduled(next);
        } else {
            // "Txn failed. Move thread to end of runqueue."
            self.failures += 1;
            self.rq(cpu).push_back(next);
        }
    }

    fn on_reconstruct(&mut self, snapshot: &[ghost_core::ThreadSnapshot], ctx: &mut PolicyCtx<'_>) {
        self.tracker.resync(
            snapshot
                .iter()
                .map(|s| (s.tid, s.seq, s.runnable, s.last_cpu)),
        );
        self.rqs.clear();
        self.home.clear();
        let cpus = ctx.enclave_cpus();
        for s in snapshot {
            // Keep locality: re-home each thread to the CPU it last ran
            // on when the enclave still owns it, else place it fresh.
            let home = if cpus.contains(s.last_cpu) {
                self.home.insert(s.tid, s.last_cpu);
                let q = ctx.queue_of_cpu(s.last_cpu);
                ctx.associate_queue(s.tid, q);
                s.last_cpu
            } else {
                self.place_new_thread(s.tid, ctx)
            };
            if s.runnable && !s.on_cpu {
                self.rq(home).push_back(s.tid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_policy_is_empty() {
        let p = PerCpuPolicy::new();
        assert_eq!(p.commits, 0);
        assert!(p.rqs.is_empty());
    }
}
