//! Behavioural tests of the kernel simulator: lifecycle, fairness,
//! class-priority preemption, SMT contention, and accounting.

use ghost_sim::app::{App, AppId, Next};
use ghost_sim::kernel::{Kernel, KernelConfig, KernelState, ThreadSpec};
use ghost_sim::thread::{ThreadState, Tid};
use ghost_sim::time::{MILLIS, SECS};
use ghost_sim::topology::Topology;
use ghost_sim::{CpuSet, CLASS_RT};
use std::collections::HashMap;

/// An app whose threads run fixed-length segments in a loop, either
/// blocking between segments (woken by a timer) or spinning forever.
struct LoopApp {
    /// Per-thread: (segment length, rearm period; 0 = run continuously).
    conf: HashMap<Tid, (u64, u64)>,
    completions: HashMap<Tid, u64>,
}

impl LoopApp {
    fn new() -> Self {
        Self {
            conf: HashMap::new(),
            completions: HashMap::new(),
        }
    }
}

impl App for LoopApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "loop"
    }

    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        // Timer key is the tid to wake.
        let tid = Tid(key as u32);
        let (seg, period) = self.conf[&tid];
        k.thread_mut(tid).remaining = seg;
        k.wake(tid);
        if period > 0 {
            let app = k.thread(tid).app.expect("loop thread has app");
            k.arm_app_timer(k.now + period, app, key);
        }
    }

    fn on_segment_end(&mut self, tid: Tid, _k: &mut KernelState) -> Next {
        *self.completions.entry(tid).or_insert(0) += 1;
        let (seg, period) = self.conf[&tid];
        if period == 0 {
            Next::Run { dur: seg }
        } else {
            Next::Block
        }
    }
}

fn spin_forever(kernel: &mut Kernel, app: AppId, name: &str, nice: i8) -> Tid {
    let spec = ThreadSpec::workload(name, &kernel.state.topo)
        .app(app)
        .nice(nice);
    kernel.spawn(spec)
}

#[test]
fn single_thread_runs_and_blocks() {
    let mut kernel = Kernel::new(Topology::test_small(1), KernelConfig::default());
    let app_id = kernel.state.next_app_id();
    let mut app = LoopApp::new();
    let t = spin_forever(&mut kernel, app_id, "worker", 0);
    app.conf.insert(t, (100_000, MILLIS)); // 100 µs every 1 ms.
    let app_id2 = kernel.add_app(Box::new(app));
    assert_eq!(app_id, app_id2);
    kernel.state.arm_app_timer(0, app_id, t.0 as u64);
    // Run past the last wakeup so the final 100 µs segment completes.
    kernel.run_until(10 * MILLIS + 500_000);
    // ~10 wakeups, each completing one 100 µs segment.
    let th = kernel.state.thread(t);
    assert_eq!(th.state, ThreadState::Blocked);
    assert!(th.total_work >= 9 * 100_000, "work = {}", th.total_work);
    // On-CPU wall time at least the work done (rate <= 1).
    assert!(th.total_oncpu >= th.total_work);
}

#[test]
fn cfs_shares_cpu_between_equal_threads() {
    let mut kernel = Kernel::new(Topology::new("uni", 1, 1, 1, 1), KernelConfig::default());
    let app_id = kernel.state.next_app_id();
    let mut app = LoopApp::new();
    let a = spin_forever(&mut kernel, app_id, "a", 0);
    let b = spin_forever(&mut kernel, app_id, "b", 0);
    app.conf.insert(a, (10 * MILLIS, 0));
    app.conf.insert(b, (10 * MILLIS, 0));
    kernel.add_app(Box::new(app));
    kernel.assign_and_wake(a, 10 * MILLIS);
    kernel.assign_and_wake(b, 10 * MILLIS);
    kernel.run_until(SECS);
    let wa = kernel.state.thread(a).total_oncpu as f64;
    let wb = kernel.state.thread(b).total_oncpu as f64;
    let ratio = wa / wb;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "CFS should split the CPU evenly, got {wa} vs {wb}"
    );
}

#[test]
fn cfs_nice_weighting_biases_cpu_time() {
    let mut kernel = Kernel::new(Topology::new("uni", 1, 1, 1, 1), KernelConfig::default());
    let app_id = kernel.state.next_app_id();
    let mut app = LoopApp::new();
    let hi = spin_forever(&mut kernel, app_id, "hi", -5);
    let lo = spin_forever(&mut kernel, app_id, "lo", 5);
    app.conf.insert(hi, (10 * MILLIS, 0));
    app.conf.insert(lo, (10 * MILLIS, 0));
    kernel.add_app(Box::new(app));
    kernel.assign_and_wake(hi, 10 * MILLIS);
    kernel.assign_and_wake(lo, 10 * MILLIS);
    kernel.run_until(2 * SECS);
    let whi = kernel.state.thread(hi).total_oncpu as f64;
    let wlo = kernel.state.thread(lo).total_oncpu as f64;
    // Weight ratio nice −5 : 5 = 3121:335 ≈ 9.3; slicing granularity
    // compresses it, but the bias must be strong.
    assert!(
        whi / wlo > 4.0,
        "nice -5 should dominate nice 5: {whi} vs {wlo}"
    );
}

#[test]
fn rt_class_preempts_cfs() {
    let mut kernel = Kernel::new(Topology::new("uni", 1, 1, 1, 1), KernelConfig::default());
    let app_id = kernel.state.next_app_id();
    let mut app = LoopApp::new();
    let cfs = spin_forever(&mut kernel, app_id, "cfs", 0);
    let rt = kernel.spawn(
        ThreadSpec::workload("rt", &kernel.state.topo)
            .app(app_id)
            .class(CLASS_RT),
    );
    app.conf.insert(cfs, (10 * MILLIS, 0));
    app.conf.insert(rt, (MILLIS, 5 * MILLIS));
    kernel.add_app(Box::new(app));
    kernel.assign_and_wake(cfs, 10 * MILLIS);
    kernel.state.arm_app_timer(10 * MILLIS, app_id, rt.0 as u64);
    kernel.run_until(100 * MILLIS);
    let rt_thread = kernel.state.thread(rt);
    // The RT thread ran every period despite the CFS hog: ~18 completions.
    assert!(
        rt_thread.total_work >= 15 * MILLIS,
        "RT starved: {}",
        rt_thread.total_work
    );
    // And the CFS thread was preempted at least once per RT wakeup.
    assert!(kernel.state.thread(cfs).preemptions >= 10);
}

#[test]
fn blocked_wakeup_prefers_idle_cpu() {
    let mut kernel = Kernel::new(Topology::test_small(2), KernelConfig::default());
    let app_id = kernel.state.next_app_id();
    let mut app = LoopApp::new();
    let hog = spin_forever(&mut kernel, app_id, "hog", 0);
    let waker = spin_forever(&mut kernel, app_id, "waker", 0);
    app.conf.insert(hog, (10 * MILLIS, 0));
    app.conf.insert(waker, (100_000, MILLIS));
    kernel.add_app(Box::new(app));
    kernel.assign_and_wake(hog, 10 * MILLIS);
    kernel.run_until(MILLIS);
    kernel.state.arm_app_timer(MILLIS, app_id, waker.0 as u64);
    kernel.run_until(50 * MILLIS);
    // With 4 logical CPUs and one hog, the waker never waits long.
    let w = kernel.state.thread(waker);
    assert!(w.total_work >= 40 * 100_000);
    let avg_wait = w.total_wait / 49;
    assert!(avg_wait < 10_000, "avg wakeup wait {avg_wait} ns too high");
}

#[test]
fn smt_siblings_run_slower() {
    // 1 physical core with 2 hyperthreads; two spinners must share the
    // core pipeline at the configured 0.65 rate each.
    let mut kernel = Kernel::new(Topology::new("smt", 1, 1, 2, 1), KernelConfig::default());
    let app_id = kernel.state.next_app_id();
    let mut app = LoopApp::new();
    let a = spin_forever(&mut kernel, app_id, "a", 0);
    let b = spin_forever(&mut kernel, app_id, "b", 0);
    app.conf.insert(a, (10 * MILLIS, 0));
    app.conf.insert(b, (10 * MILLIS, 0));
    kernel.add_app(Box::new(app));
    kernel.assign_and_wake(a, 10 * MILLIS);
    kernel.assign_and_wake(b, 10 * MILLIS);
    kernel.run_until(SECS);
    for t in [a, b] {
        let th = kernel.state.thread(t);
        let rate = th.total_work as f64 / th.total_oncpu as f64;
        assert!(
            (0.6..0.72).contains(&rate),
            "SMT rate should be ~0.65, got {rate}"
        );
    }
}

#[test]
fn smt_model_can_be_disabled() {
    let cfg = KernelConfig {
        smt_model: false,
        ..KernelConfig::default()
    };
    let mut kernel = Kernel::new(Topology::new("smt", 1, 1, 2, 1), cfg);
    let app_id = kernel.state.next_app_id();
    let mut app = LoopApp::new();
    let a = spin_forever(&mut kernel, app_id, "a", 0);
    let b = spin_forever(&mut kernel, app_id, "b", 0);
    app.conf.insert(a, (10 * MILLIS, 0));
    app.conf.insert(b, (10 * MILLIS, 0));
    kernel.add_app(Box::new(app));
    kernel.assign_and_wake(a, 10 * MILLIS);
    kernel.assign_and_wake(b, 10 * MILLIS);
    kernel.run_until(100 * MILLIS);
    let th = kernel.state.thread(a);
    let rate = th.total_work as f64 / th.total_oncpu as f64;
    assert!(
        rate > 0.99,
        "rate without SMT model should be 1.0, got {rate}"
    );
}

#[test]
fn load_spreads_across_cpus() {
    let mut kernel = Kernel::new(Topology::test_small(4), KernelConfig::default());
    let app_id = kernel.state.next_app_id();
    let mut app = LoopApp::new();
    let mut tids = Vec::new();
    for i in 0..8 {
        let t = spin_forever(&mut kernel, app_id, &format!("w{i}"), 0);
        app.conf.insert(t, (10 * MILLIS, 0));
        tids.push(t);
    }
    kernel.add_app(Box::new(app));
    for &t in &tids {
        kernel.assign_and_wake(t, 10 * MILLIS);
    }
    kernel.run_until(SECS);
    // 8 spinners on 8 logical CPUs: everyone should get a full CPU's
    // worth of wall time (modulo switches).
    for &t in &tids {
        let th = kernel.state.thread(t);
        assert!(
            th.total_oncpu > 900 * MILLIS,
            "{}: oncpu {}",
            th.name,
            th.total_oncpu
        );
    }
}

#[test]
fn affinity_restricts_placement() {
    let mut kernel = Kernel::new(Topology::test_small(2), KernelConfig::default());
    let app_id = kernel.state.next_app_id();
    let mut app = LoopApp::new();
    let mask = CpuSet::from_iter([ghost_sim::topology::CpuId(1)]);
    let t = kernel.spawn(
        ThreadSpec::workload("pinned", &kernel.state.topo)
            .app(app_id)
            .affinity(mask),
    );
    app.conf.insert(t, (MILLIS, 0));
    kernel.add_app(Box::new(app));
    kernel.assign_and_wake(t, MILLIS);
    kernel.run_until(100 * MILLIS);
    let th = kernel.state.thread(t);
    assert_eq!(th.last_cpu, Some(ghost_sim::topology::CpuId(1)));
    assert_eq!(th.migrations, 0);
}

#[test]
fn exit_terminates_thread() {
    struct OneShot;
    impl App for OneShot {
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }

        fn name(&self) -> &str {
            "oneshot"
        }
        fn on_timer(&mut self, _key: u64, _k: &mut KernelState) {}
        fn on_segment_end(&mut self, _tid: Tid, _k: &mut KernelState) -> Next {
            Next::Exit
        }
    }
    let mut kernel = Kernel::new(Topology::test_small(1), KernelConfig::default());
    let app_id = kernel.state.next_app_id();
    let t = kernel.spawn(ThreadSpec::workload("dying", &kernel.state.topo).app(app_id));
    kernel.add_app(Box::new(OneShot));
    kernel.assign_and_wake(t, MILLIS);
    kernel.run_until(10 * MILLIS);
    assert_eq!(kernel.state.thread(t).state, ThreadState::Dead);
    // Waking a dead thread is a no-op.
    kernel.wake_now(t);
    assert_eq!(kernel.state.thread(t).state, ThreadState::Dead);
}

#[test]
fn kill_removes_running_thread() {
    let mut kernel = Kernel::new(Topology::new("uni", 1, 1, 1, 1), KernelConfig::default());
    let app_id = kernel.state.next_app_id();
    let mut app = LoopApp::new();
    let t = spin_forever(&mut kernel, app_id, "victim", 0);
    app.conf.insert(t, (10 * MILLIS, 0));
    kernel.add_app(Box::new(app));
    kernel.assign_and_wake(t, 10 * MILLIS);
    kernel.run_until(5 * MILLIS);
    assert_eq!(kernel.state.thread(t).state, ThreadState::Running);
    kernel.kill(t);
    assert_eq!(kernel.state.thread(t).state, ThreadState::Dead);
    assert!(
        kernel.state.cpu(ghost_sim::topology::CpuId(0)).is_idle() || {
            // The CPU may be mid-switch to idle; settle by running on.
            kernel.run_until(6 * MILLIS);
            kernel.state.cpu(ghost_sim::topology::CpuId(0)).is_idle()
        }
    );
}

#[test]
fn determinism_same_seed_same_trace() {
    let run = || {
        let mut kernel = Kernel::new(Topology::test_small(2), KernelConfig::default());
        let app_id = kernel.state.next_app_id();
        let mut app = LoopApp::new();
        let mut tids = Vec::new();
        for i in 0..5 {
            let t = spin_forever(&mut kernel, app_id, &format!("w{i}"), 0);
            app.conf
                .insert(t, (500_000 + i * 100_000, MILLIS * (i + 1)));
            tids.push(t);
        }
        kernel.add_app(Box::new(app));
        for (i, &t) in tids.iter().enumerate() {
            kernel
                .state
                .arm_app_timer(i as u64 * 100_000, app_id, t.0 as u64);
        }
        kernel.run_until(200 * MILLIS);
        (
            kernel.state.stats.ctx_switches,
            kernel.state.stats.events,
            tids.iter()
                .map(|&t| kernel.state.thread(t).total_work)
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn wait_time_is_accounted() {
    // Two CFS spinners on one CPU: each waits roughly half the time.
    let mut kernel = Kernel::new(Topology::new("uni", 1, 1, 1, 1), KernelConfig::default());
    let app_id = kernel.state.next_app_id();
    let mut app = LoopApp::new();
    let a = spin_forever(&mut kernel, app_id, "a", 0);
    let b = spin_forever(&mut kernel, app_id, "b", 0);
    app.conf.insert(a, (10 * MILLIS, 0));
    app.conf.insert(b, (10 * MILLIS, 0));
    kernel.add_app(Box::new(app));
    kernel.assign_and_wake(a, 10 * MILLIS);
    kernel.assign_and_wake(b, 10 * MILLIS);
    kernel.run_until(SECS);
    let wait = kernel.state.thread(a).total_wait + kernel.state.thread(b).total_wait;
    assert!(
        wait > 800 * MILLIS,
        "combined wait should be ~1 s of contention, got {wait}"
    );
}

#[test]
fn cfs_spreads_across_idle_cores_before_smt() {
    // 4 cores / 8 CPUs, 4 spinners: with idle cores available, CFS must
    // not pack SMT siblings (Linux's select_idle_core behaviour).
    let mut kernel = Kernel::new(Topology::test_small(4), KernelConfig::default());
    let app_id = kernel.state.next_app_id();
    let mut app = LoopApp::new();
    let mut tids = Vec::new();
    for i in 0..4 {
        let t = spin_forever(&mut kernel, app_id, &format!("w{i}"), 0);
        app.conf.insert(t, (10 * MILLIS, 0));
        tids.push(t);
    }
    kernel.add_app(Box::new(app));
    for &t in &tids {
        kernel.assign_and_wake(t, 10 * MILLIS);
    }
    kernel.run_until(20 * MILLIS);
    let mut cores: Vec<u16> = tids
        .iter()
        .map(|&t| {
            let cpu = kernel.state.thread(t).cpu.expect("spinner on CPU");
            kernel.state.topo.info(cpu).core
        })
        .collect();
    cores.sort_unstable();
    cores.dedup();
    assert_eq!(cores.len(), 4, "each spinner should own a whole core");
    // And every spinner runs at full (non-SMT) rate.
    for &t in &tids {
        let th = kernel.state.thread(t);
        let rate = th.total_work as f64 / th.total_oncpu as f64;
        assert!(rate > 0.95, "{}: SMT-degraded rate {rate}", th.name);
    }
}

#[test]
fn cfs_wakeup_placement_is_llc_local() {
    // Rome topology: a thread whose previous CPU sits in a fully busy CCX
    // queues there rather than jumping across the machine on wakeup
    // (select_idle_sibling semantics); the periodic balancer migrates it
    // only at millisecond granularity.
    let mut kernel = Kernel::new(Topology::rome_256(), KernelConfig::default());
    let app_id = kernel.state.next_app_id();
    let mut app = LoopApp::new();
    // Pin 8 hogs onto CCX 0 (cpus 0..4 and 128..132 are its 8 CPUs).
    let ccx0 = kernel.state.topo.ccx_cpus(0);
    let mut hogs = Vec::new();
    for i in 0..8 {
        let t = kernel.spawn(
            ThreadSpec::workload(&format!("hog{i}"), &kernel.state.topo)
                .app(app_id)
                .affinity(ccx0),
        );
        app.conf.insert(t, (100 * MILLIS, 0));
        hogs.push(t);
    }
    // The wanderer first runs (and blocks) inside CCX 0, so its wakeup
    // LLC is CCX 0; afterwards its affinity is widened to the machine.
    let wanderer = kernel.spawn(
        ThreadSpec::workload("wanderer", &kernel.state.topo)
            .app(app_id)
            .affinity(ccx0),
    );
    // Nonzero period makes LoopApp block after each segment (the timer
    // is simply never armed for this thread).
    app.conf.insert(wanderer, (200_000, MILLIS));
    kernel.add_app(Box::new(app));
    kernel.assign_and_wake(wanderer, 200_000);
    kernel.run_until(MILLIS); // Runs 200 µs in CCX 0, then blocks.
    assert_eq!(kernel.state.thread(wanderer).state, ThreadState::Blocked);
    assert!(ccx0.contains(kernel.state.thread(wanderer).last_cpu.expect("ran")));
    kernel
        .state
        .set_affinity(wanderer, kernel.state.topo.all_cpus_set());
    for &h in &hogs {
        kernel.assign_and_wake(h, 100 * MILLIS);
    }
    kernel.run_until(2 * MILLIS);
    // Wake the wanderer: its LLC is saturated, so it must QUEUE there
    // (not instantly appear on a remote CCX).
    kernel.state.thread_mut(wanderer).remaining = 200_000;
    kernel.wake_now(wanderer);
    kernel.run_until(2 * MILLIS + 100_000);
    // (No balancer pass has happened yet at +100 µs.)
    let th = kernel.state.thread(wanderer);
    assert_ne!(
        th.state,
        ThreadState::Running,
        "wakeup should have queued in the busy LLC, not jumped sockets"
    );
}
