//! The §4.2 scenario in miniature: serve a dispersive RocksDB workload
//! (99.5% short requests, 0.5% of 10 ms) with the preemptive
//! ghOSt-Shinjuku policy vs plain CFS, and watch the tail separate.
//!
//! ```text
//! cargo run --release --example shinjuku_rocksdb
//! ```

use ghost::core::enclave::EnclaveConfig;
use ghost::core::runtime::GhostRuntime;
use ghost::lab::{Scenario, TopologySpec};
use ghost::metrics::Table;
use ghost::policies::shinjuku::{ShinjukuConfig, ShinjukuPolicy};
use ghost::sim::kernel::ThreadSpec;
use ghost::sim::time::MILLIS;
use ghost::sim::topology::CpuId;
use ghost::sim::CpuSet;
use ghost::workloads::rocksdb::{RocksDbApp, RocksDbConfig, RocksDbResults};

const HORIZON: u64 = 400 * MILLIS;
const RATE: f64 = 150_000.0;
const WORKERS: usize = 200;

fn serve(use_ghost: bool) -> RocksDbResults {
    let (mut kernel, _sink) = Scenario::builder()
        .name("shinjuku-rocksdb")
        .topology(TopologySpec::E5Single24)
        .build_kernel();
    let cfg = RocksDbConfig::dispersive(RATE, 7);
    let app_id = kernel.state.next_app_id();
    let mut app = RocksDbApp::new(cfg, app_id, HORIZON);
    let mut tids = Vec::new();
    for i in 0..WORKERS {
        let tid =
            kernel.spawn(ThreadSpec::workload(&format!("w{i}"), &kernel.state.topo).app(app_id));
        app.add_worker(tid);
        tids.push(tid);
    }
    app.start(&mut kernel.state);
    kernel.add_app(Box::new(app));

    let worker_cpus: CpuSet = (2..=22u16).map(CpuId).collect();
    if use_ghost {
        let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
        let enclave = runtime.launch_enclave(
            &mut kernel,
            worker_cpus,
            EnclaveConfig::centralized("shinjuku"),
            Box::new(ShinjukuPolicy::new(ShinjukuConfig::default())),
        );
        for &tid in &tids {
            kernel.state.set_affinity(tid, worker_cpus);
            enclave.attach_thread(&mut kernel.state, tid);
        }
    } else {
        for &tid in &tids {
            kernel.state.set_affinity(tid, worker_cpus);
        }
    }
    kernel.run_until(HORIZON);
    kernel
        .app_mut(app_id)
        .as_any()
        .downcast_mut::<RocksDbApp>()
        .expect("rocksdb app")
        .results()
}

fn main() {
    println!("Serving {RATE:.0} req/s of the dispersive RocksDB workload...");
    let ghost = serve(true);
    let cfs = serve(false);
    let mut t = Table::new(vec!["percentile", "ghOSt-Shinjuku (us)", "CFS (us)"])
        .with_title("Request latency");
    for p in [50.0, 90.0, 99.0, 99.9] {
        t.row(vec![
            format!("{p}%"),
            format!("{:.0}", ghost.latency.percentile(p) as f64 / 1e3),
            format!("{:.0}", cfs.latency.percentile(p) as f64 / 1e3),
        ]);
    }
    t.print();
    println!(
        "completed: ghOSt {} / CFS {}",
        ghost.completed, cfs.completed
    );
    println!(
        "\nThe 30 µs preemption slice keeps 4 µs requests from queueing\n\
         behind 10 ms ones — exactly the Shinjuku effect of §4.2."
    );
}
