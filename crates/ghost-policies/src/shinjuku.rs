//! The Shinjuku policy (§4.2): centralized FIFO with microsecond-scale
//! preemption, implemented "in 710 lines of userspace code" in the paper.
//!
//! Requests run on a pool of worker threads. The global agent keeps a
//! FIFO of runnable workers, schedules them onto idle CPUs, and preempts
//! any worker that exceeds its time slice (30 µs in the evaluation) while
//! other workers wait — the key to taming the 0.5% of 10 ms requests that
//! would otherwise block 4 µs requests behind them.

use crate::tracker::ThreadTracker;
use ghost_core::msg::Message;
use ghost_core::policy::{GhostPolicy, PolicyCtx};
use ghost_core::txn::Transaction;
use ghost_sim::thread::Tid;
use ghost_sim::time::{Nanos, MICROS};
use ghost_sim::topology::CpuId;
use std::collections::{HashMap, HashSet, VecDeque};

/// Shinjuku policy tunables.
#[derive(Debug, Clone)]
pub struct ShinjukuConfig {
    /// Preemption time slice ("The allotted timeslice per worker thread
    /// ... is 30 µs").
    pub timeslice: Nanos,
    /// Per-decision compute cost (ns).
    pub decision_cost: Nanos,
}

impl Default for ShinjukuConfig {
    fn default() -> Self {
        Self {
            timeslice: 30 * MICROS,
            decision_cost: 60,
        }
    }
}

/// The centralized preemptive Shinjuku policy.
pub struct ShinjukuPolicy {
    /// Tunables.
    pub config: ShinjukuConfig,
    pub(crate) tracker: ThreadTracker,
    pub(crate) rq: VecDeque<Tid>,
    queued: HashSet<Tid>,
    /// When each currently-running worker was scheduled (for slice
    /// expiry checks).
    running_since: HashMap<Tid, Nanos>,
    /// Preemptions issued.
    pub preemptions: u64,
    /// Commits and failures.
    pub commits: u64,
    /// Failed commits.
    pub failures: u64,
}

impl ShinjukuPolicy {
    /// Creates the policy with the given tunables.
    pub fn new(config: ShinjukuConfig) -> Self {
        Self {
            config,
            tracker: ThreadTracker::new(),
            rq: VecDeque::new(),
            queued: HashSet::new(),
            running_since: HashMap::new(),
            preemptions: 0,
            commits: 0,
            failures: 0,
        }
    }

    pub(crate) fn enqueue(&mut self, tid: Tid) {
        if self.queued.insert(tid) {
            self.rq.push_back(tid);
        }
    }

    pub(crate) fn dequeue(&mut self, tid: Tid) {
        if self.queued.remove(&tid) {
            self.rq.retain(|&t| t != tid);
        }
    }

    /// Handles the tracker side of a message. Returns true if handled.
    pub(crate) fn track(&mut self, msg: &Message) {
        let Some(view) = self.tracker.apply(msg) else {
            return;
        };
        if view.dead {
            self.dequeue(msg.tid);
            self.running_since.remove(&msg.tid);
        } else if view.runnable {
            self.running_since.remove(&msg.tid);
            self.enqueue(msg.tid);
        } else {
            // Blocked: request finished or waiting for work.
            self.dequeue(msg.tid);
            self.running_since.remove(&msg.tid);
        }
    }

    /// Records a successful commit made by a wrapper policy.
    pub(crate) fn note_commit(&mut self, tid: Tid, now: Nanos) {
        self.commits += 1;
        self.tracker.mark_scheduled(tid);
        self.running_since.insert(tid, now);
    }

    /// Records a failed wrapper commit: the thread goes back on the FIFO.
    pub(crate) fn note_failure(&mut self, tid: Tid) {
        self.failures += 1;
        self.enqueue(tid);
    }

    /// Fills idle CPUs from the FIFO with one group commit.
    pub(crate) fn fill_idle(&mut self, ctx: &mut PolicyCtx<'_>) {
        let mut txns = Vec::new();
        let mut targets = Vec::new();
        for cpu in ctx.idle_cpus().iter() {
            let Some(tid) = self.rq.pop_front() else {
                break;
            };
            self.queued.remove(&tid);
            ctx.charge(self.config.decision_cost);
            txns.push(Transaction::new(tid, cpu).with_thread_seq(self.tracker.seq(tid)));
            targets.push(tid);
        }
        if txns.is_empty() {
            return;
        }
        ctx.commit(&mut txns);
        for txn in &txns {
            if txn.status.committed() {
                self.commits += 1;
                self.tracker.mark_scheduled(txn.tid);
                self.running_since.insert(txn.tid, ctx.now());
            } else {
                self.failures += 1;
                self.enqueue(txn.tid);
            }
        }
    }

    /// Preempts workers that exhausted their slice while others wait:
    /// commit the next FIFO worker onto the expired worker's CPU. The
    /// displaced worker comes back via THREAD_PREEMPTED.
    pub(crate) fn preempt_expired(&mut self, ctx: &mut PolicyCtx<'_>) {
        let now = ctx.now();
        let slice = self.config.timeslice;
        if self.rq.is_empty() {
            return;
        }
        let expired: Vec<(Tid, CpuId)> = ctx
            .enclave_cpus()
            .iter()
            .filter_map(|cpu| {
                let running = ctx.running_ghost(cpu)?;
                let since = *self.running_since.get(&running)?;
                (now.saturating_sub(since) >= slice && !ctx.commit_pending(cpu))
                    .then_some((running, cpu))
            })
            .collect();
        for (victim, cpu) in expired {
            let Some(next) = self.rq.pop_front() else {
                break;
            };
            self.queued.remove(&next);
            ctx.charge(self.config.decision_cost);
            let mut txn = Transaction::new(next, cpu).with_thread_seq(self.tracker.seq(next));
            if ctx.commit_one(&mut txn).committed() {
                self.commits += 1;
                self.preemptions += 1;
                self.tracker.mark_scheduled(next);
                self.running_since.remove(&victim);
                self.running_since.insert(next, now);
            } else {
                self.failures += 1;
                self.enqueue(next);
            }
        }
    }

    /// Reseeds the policy from a status-word scan (§3.4): the tracker is
    /// resynced over the whole snapshot, then queues and slice bookkeeping
    /// are rebuilt for the threads `lc` claims for this policy (wrappers
    /// like Shinjuku+Shenango filter out their batch-tier threads).
    pub(crate) fn reseed_from<F: Fn(&ghost_core::ThreadSnapshot) -> bool>(
        &mut self,
        snapshot: &[ghost_core::ThreadSnapshot],
        now: Nanos,
        lc: F,
    ) {
        self.tracker.resync(
            snapshot
                .iter()
                .map(|s| (s.tid, s.seq, s.runnable, s.last_cpu)),
        );
        self.rq.clear();
        self.queued.clear();
        self.running_since.clear();
        for s in snapshot.iter().filter(|s| lc(s)) {
            if s.on_cpu {
                // Already running: give it a fresh slice from now.
                self.running_since.insert(s.tid, now);
            } else if s.runnable {
                self.enqueue(s.tid);
            }
        }
    }

    /// Asks for a wakeup at the earliest upcoming slice expiry so
    /// preemption happens on time even without new messages. Expiries
    /// already in the past (a victim that could not be preempted this
    /// round, e.g. its CPU has a commit in flight) are re-checked a
    /// quarter-slice later rather than immediately, so the agent cannot
    /// spin without making progress.
    pub(crate) fn arm_slice_timer(&self, ctx: &mut PolicyCtx<'_>) {
        if self.rq.is_empty() {
            return;
        }
        let now = ctx.now();
        let next_future = self
            .running_since
            .values()
            .map(|&s| s + self.config.timeslice)
            .filter(|&at| at > now)
            .min();
        match next_future {
            Some(at) => ctx.request_wakeup_at(at),
            None if !self.running_since.is_empty() => {
                ctx.request_wakeup_at(now + self.config.timeslice / 4);
            }
            None => {}
        }
    }
}

impl GhostPolicy for ShinjukuPolicy {
    fn name(&self) -> &str {
        "shinjuku"
    }

    fn on_msg(&mut self, msg: &Message, _ctx: &mut PolicyCtx<'_>) {
        self.track(msg);
    }

    fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
        self.fill_idle(ctx);
        self.preempt_expired(ctx);
        self.arm_slice_timer(ctx);
    }

    fn on_reconstruct(&mut self, snapshot: &[ghost_core::ThreadSnapshot], ctx: &mut PolicyCtx<'_>) {
        let now = ctx.now();
        self.reseed_from(snapshot, now, |_| true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_core::msg::MsgType;

    #[test]
    fn default_slice_is_30us() {
        assert_eq!(ShinjukuConfig::default().timeslice, 30_000);
    }

    #[test]
    fn queue_tracks_wakeups_and_blocks() {
        let mut p = ShinjukuPolicy::new(ShinjukuConfig::default());
        let w = Message::thread(MsgType::ThreadWakeup, Tid(1), 1, CpuId(0), 0);
        p.track(&w);
        assert_eq!(p.rq.len(), 1);
        let b = Message::thread(MsgType::ThreadBlocked, Tid(1), 2, CpuId(0), 0);
        p.track(&b);
        assert_eq!(p.rq.len(), 0);
    }

    #[test]
    fn preempted_worker_requeues_at_back() {
        let mut p = ShinjukuPolicy::new(ShinjukuConfig::default());
        p.track(&Message::thread(
            MsgType::ThreadWakeup,
            Tid(1),
            1,
            CpuId(0),
            0,
        ));
        p.track(&Message::thread(
            MsgType::ThreadWakeup,
            Tid(2),
            1,
            CpuId(0),
            0,
        ));
        p.track(&Message::thread(
            MsgType::ThreadPreempted,
            Tid(1),
            2,
            CpuId(0),
            0,
        ));
        // Tid(1) was already queued; re-delivery keeps order without dupes.
        assert_eq!(p.rq.len(), 2);
        assert_eq!(p.rq[0], Tid(1));
    }
}
