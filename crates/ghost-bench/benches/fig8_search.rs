//! Fig. 8: Google Search (§4.4). Normalized throughput (QPS) and 99%
//! tail latency over a 60-second run, query types A/B/C, CFS vs the
//! NUMA/CCX-aware ghOSt policy.

use ghost_bench::fig8::{self, SearchSched};
use ghost_metrics::Table;
use ghost_policies::search::SearchConfig;
use ghost_sim::time::SECS;
use ghost_workloads::search::{QueryType, SearchWorkloadConfig};

fn main() {
    let duration = 60 * SECS;
    let wl = SearchWorkloadConfig::default();
    let cfs = fig8::run(SearchSched::Cfs, wl.clone(), duration);
    let gho = fig8::run(
        SearchSched::Ghost(SearchConfig::default()),
        wl.clone(),
        duration,
    );

    for ty in [QueryType::A, QueryType::B, QueryType::C] {
        let c = &cfs.series[&ty];
        let g = &gho.series[&ty];
        let bins = c.num_bins().min(g.num_bins());
        let mut t = Table::new(vec![
            "t (s)",
            "CFS QPS",
            "ghOSt QPS",
            "CFS p99 (ms)",
            "ghOSt p99 (ms)",
        ])
        .with_title(format!("Fig. 8: query type {ty:?} over time"));
        // Print every 5th second to keep the output readable.
        for b in (2..bins).step_by(5) {
            t.row(vec![
                b.to_string(),
                c.bin_count(b).to_string(),
                g.bin_count(b).to_string(),
                format!("{:.2}", c.bin_percentile(b, 99.0) as f64 / 1e6),
                format!("{:.2}", g.bin_percentile(b, 99.0) as f64 / 1e6),
            ]);
        }
        t.print();
        println!();
    }

    // Aggregate comparison + shape assertions.
    let mut t = Table::new(vec![
        "query",
        "CFS QPS",
        "ghOSt QPS",
        "CFS p99 (ms)",
        "ghOSt p99 (ms)",
        "p99 ratio",
    ])
    .with_title("Fig. 8 aggregate (post-warmup)");
    for ty in [QueryType::A, QueryType::B, QueryType::C] {
        let span = (duration - 2 * SECS) as f64 / 1e9;
        let c_qps = cfs.latency[&ty].count() as f64 / span;
        let g_qps = gho.latency[&ty].count() as f64 / span;
        let c99 = cfs.latency[&ty].percentile(99.0) as f64;
        let g99 = gho.latency[&ty].percentile(99.0) as f64;
        t.row(vec![
            format!("{ty:?}"),
            format!("{c_qps:.0}"),
            format!("{g_qps:.0}"),
            format!("{:.2}", c99 / 1e6),
            format!("{:.2}", g99 / 1e6),
            format!("{:.2}", g99 / c99),
        ]);
        // Throughput parity (paper: "comparable throughput to CFS").
        assert!(
            g_qps > 0.93 * c_qps,
            "{ty:?}: ghOSt throughput {g_qps:.0} should match CFS {c_qps:.0}"
        );
        // Tail latency: A and B improve markedly (paper: 40-45% lower);
        // C is comparable.
        match ty {
            // A's tail keeps a large scheduler-independent queueing
            // component in our open-loop model; the paper's 40-45% win
            // shows here as a smaller but consistent improvement.
            QueryType::A => assert!(
                g99 < 0.92 * c99,
                "{ty:?}: ghOSt p99 {g99:.0} should beat CFS {c99:.0}"
            ),
            QueryType::B => assert!(
                g99 < 0.80 * c99,
                "{ty:?}: ghOSt p99 {g99:.0} should beat CFS {c99:.0} clearly"
            ),
            QueryType::C => assert!(
                g99 < 1.4 * c99,
                "{ty:?}: ghOSt p99 {g99:.0} should be comparable to CFS {c99:.0}"
            ),
        }
    }
    t.print();
    println!("\nOK: Fig. 8 shapes hold (throughput parity; A/B tails improve).");
}
