//! Quickstart: delegate scheduling of a few threads to a userspace FIFO
//! policy on a small simulated machine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ghost::core::enclave::EnclaveConfig;
use ghost::core::msg::MsgType;
use ghost::core::runtime::GhostRuntime;
use ghost::policies::CentralizedFifo;
use ghost::sim::app::{App, Next};
use ghost::sim::kernel::{Kernel, KernelConfig, KernelState, ThreadSpec};
use ghost::sim::thread::Tid;
use ghost::sim::time::{MICROS, MILLIS};
use ghost::sim::topology::Topology;

/// A toy workload: threads run 100 µs bursts, sleeping 1 ms in between.
struct Bursts;

impl App for Bursts {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "bursts"
    }

    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        let tid = Tid(key as u32);
        if k.threads[tid.index()].state == ghost::sim::ThreadState::Blocked {
            k.thread_mut(tid).remaining = 100 * MICROS;
            k.wake(tid);
        }
        let app = k.thread(tid).app.expect("burst thread has an app");
        k.arm_app_timer(k.now + MILLIS, app, key);
    }

    fn on_segment_end(&mut self, _tid: Tid, _k: &mut KernelState) -> Next {
        Next::Block
    }
}

fn main() {
    // 1. Boot a small machine: 4 cores, 8 logical CPUs.
    let mut kernel = Kernel::new(Topology::test_small(4), KernelConfig::default());

    // 2. Install the ghOSt runtime and create an enclave over CPUs 1..7
    //    running a centralized FIFO policy (CPU 0 stays with CFS).
    let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
    runtime.install(&mut kernel);
    let cpus = (1..8u16).map(ghost::sim::topology::CpuId).collect();
    let enclave = runtime.create_enclave(
        cpus,
        EnclaveConfig::centralized("quickstart"),
        Box::new(CentralizedFifo::new()),
    );
    runtime.spawn_agents(&mut kernel, enclave);

    // 3. Spawn workload threads and hand them to ghOSt.
    let app_id = kernel.state.next_app_id();
    let mut tids = Vec::new();
    for i in 0..6 {
        let tid = kernel
            .spawn(ThreadSpec::workload(&format!("worker-{i}"), &kernel.state.topo).app(app_id));
        tids.push(tid);
    }
    kernel.add_app(Box::new(Bursts));
    for (i, &tid) in tids.iter().enumerate() {
        runtime.attach_thread(&mut kernel.state, enclave, tid);
        kernel
            .state
            .arm_app_timer((i as u64 + 1) * 50 * MICROS, app_id, tid.0 as u64);
    }

    // 4. Run one virtual second and report.
    kernel.run_until(1_000 * MILLIS);
    let stats = runtime.stats();
    println!("ghOSt quickstart — 1 virtual second on {} CPUs", 8);
    println!("  agent activations : {}", stats.activations);
    println!("  txns committed    : {}", stats.txns_committed);
    println!("  txns failed       : {}", stats.txns_failed());
    println!(
        "  THREAD_WAKEUPs    : {}",
        stats.posted(MsgType::ThreadWakeup)
    );
    println!(
        "  THREAD_BLOCKEDs   : {}",
        stats.posted(MsgType::ThreadBlocked)
    );
    for &tid in &tids {
        let t = kernel.state.thread(tid);
        println!(
            "  {:<9} ran {:>6} µs over {} stints",
            t.name,
            t.total_work / 1_000,
            t.stint
        );
    }
    assert!(stats.txns_committed > 5_000, "scheduling should be brisk");
    println!("OK");
}
