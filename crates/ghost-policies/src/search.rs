//! The Google Search policy (§4.4): a centralized global agent for a
//! 256-CPU AMD Rome machine that
//!
//! * keeps runnable threads in a **min-heap ordered by elapsed runtime**
//!   ("threads with the least elapsed runtime are picked for execution
//!   before others"),
//! * respects each thread's **cpumask** ("intersects the thread's cpumask
//!   with the set of idle CPUs. If the intersection is empty, the agent
//!   skips the thread and schedules the next thread in the runqueue,
//!   revisiting the skipped thread in the next iteration"),
//! * places threads for **cache warmth**: same L1/L2 (core) first, then
//!   the CCX (L3), then a fan-out search of neighbouring CCXs,
//! * and optionally keeps a thread **pending up to 100 µs** for its
//!   preferred CCX instead of migrating it immediately — the bespoke
//!   optimization the paper found via rapid experimentation.
//!
//! NUMA and CCX awareness are switchable for the ablation benches
//! (they delivered "27% and 10% throughput improvements" in the paper).

use crate::tracker::ThreadTracker;
use ghost_core::msg::Message;
use ghost_core::policy::{GhostPolicy, PolicyCtx};
use ghost_core::txn::Transaction;
use ghost_sim::cpuset::CpuSet;
use ghost_sim::thread::Tid;
use ghost_sim::time::{Nanos, MICROS};
use ghost_sim::topology::CpuId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Search policy tunables (ablation switches included).
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Respect NUMA placement (thread cpumasks + socket-local search).
    pub numa_aware: bool,
    /// Prefer the last CCX before migrating (L3 warmth).
    pub ccx_aware: bool,
    /// Keep a thread pending for its preferred CCX this long before
    /// migrating it ("more efficient to temporarily keep the thread
    /// pending for 100 µs rather than migrate it to another CCX
    /// immediately"). `None` migrates immediately.
    pub ccx_pending_wait: Option<Nanos>,
    /// Weight heap ordering by nice values (the improvement §4.4 found
    /// for query type C: "incorporating them into ghOSt's policy will
    /// allow ghOSt to beat CFS for query C's tail latency"). The heap
    /// key becomes nice-weighted runtime, so high-priority threads are
    /// picked ahead of background work with equal raw runtime.
    pub nice_aware: bool,
    /// Per-decision compute cost (ns).
    pub decision_cost: Nanos,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            numa_aware: true,
            ccx_aware: true,
            ccx_pending_wait: Some(100 * MICROS),
            nice_aware: false,
            decision_cost: 120,
        }
    }
}

/// Min-heap entry: (elapsed runtime, tid).
type HeapEntry = Reverse<(Nanos, Tid)>;

/// The NUMA/CCX-aware least-runtime-first Search policy.
pub struct SearchPolicy {
    /// Tunables.
    pub config: SearchConfig,
    tracker: ThreadTracker,
    heap: BinaryHeap<HeapEntry>,
    queued: HashSet<Tid>,
    /// When each queued thread started waiting for its preferred CCX.
    pending_since: HashMap<Tid, Nanos>,
    /// Commits.
    pub commits: u64,
    /// Failed commits.
    pub failures: u64,
    /// Threads placed outside their last CCX (migrations).
    pub ccx_migrations: u64,
}

impl SearchPolicy {
    /// Creates the policy.
    pub fn new(config: SearchConfig) -> Self {
        Self {
            config,
            tracker: ThreadTracker::new(),
            heap: BinaryHeap::new(),
            queued: HashSet::new(),
            pending_since: HashMap::new(),
            commits: 0,
            failures: 0,
            ccx_migrations: 0,
        }
    }

    fn push(&mut self, tid: Tid, runtime: Nanos) {
        if self.queued.insert(tid) {
            self.heap.push(Reverse((runtime, tid)));
        }
    }

    /// Heap ordering key: raw elapsed runtime, or — when `nice_aware` —
    /// runtime scaled by the CFS weight table so high-priority threads
    /// accrue "virtual" runtime more slowly (exactly CFS's vruntime
    /// idea, applied inside the userspace policy).
    fn heap_key(&self, view: &ghost_core::ThreadView) -> Nanos {
        if !self.config.nice_aware {
            return view.total_runtime;
        }
        let weight = ghost_sim::cfs::weight_of(view.nice) as u64;
        view.total_runtime * ghost_sim::cfs::NICE_0_WEIGHT / weight
    }

    /// Picks the best CPU for `tid` out of `idle ∩ affinity`, searching
    /// outward from where the thread last ran: same core (L1/L2), same
    /// CCX (L3), neighbouring CCXs, then anywhere allowed.
    ///
    /// Returns `(cpu, same_ccx)`, or `None` if the intersection is empty.
    fn pick_cpu(
        &self,
        ctx: &PolicyCtx<'_>,
        idle: &CpuSet,
        affinity: &CpuSet,
        last: Option<CpuId>,
    ) -> Option<(CpuId, bool)> {
        let allowed = idle.and(affinity);
        let first = allowed.first()?;
        let Some(last) = last else {
            return Some((first, true));
        };
        let topo = ctx.topo();
        if !self.config.ccx_aware {
            if self.config.numa_aware {
                // Socket-local placement only.
                if let Some(c) = allowed.iter().find(|&c| topo.same_socket(c, last)) {
                    return Some((c, topo.same_ccx(c, last)));
                }
            }
            return Some((first, topo.same_ccx(first, last)));
        }
        // L1/L2: the core the thread last ran on.
        if let Some(c) = topo.core_cpus(last).and(&allowed).first() {
            return Some((c, true));
        }
        // L3: same CCX.
        let last_ccx = topo.info(last).ccx;
        if let Some(c) = topo.ccx_cpus(last_ccx).and(&allowed).first() {
            return Some((c, true));
        }
        // Fan-out: nearest-neighbour CCXs (same socket first when
        // NUMA-aware).
        for ccx in topo.ccx_neighbors(last_ccx) {
            let cand = topo.ccx_cpus(ccx).and(&allowed);
            if let Some(c) = cand.first() {
                if self.config.numa_aware && !topo.same_socket(c, last) {
                    // Cross-socket only as the very last resort.
                    continue;
                }
                return Some((c, false));
            }
        }
        Some((first, false))
    }
}

impl GhostPolicy for SearchPolicy {
    fn name(&self) -> &str {
        "search-numa-ccx"
    }

    fn on_msg(&mut self, msg: &Message, ctx: &mut PolicyCtx<'_>) {
        let Some(view) = self.tracker.apply(msg) else {
            return;
        };
        if view.dead {
            self.queued.remove(&msg.tid);
            self.pending_since.remove(&msg.tid);
        } else if view.runnable {
            let runtime = ctx
                .thread_view(msg.tid)
                .map(|v| self.heap_key(&v))
                .unwrap_or(0);
            self.push(msg.tid, runtime);
        } else {
            self.queued.remove(&msg.tid);
            self.pending_since.remove(&msg.tid);
        }
    }

    fn on_reconstruct(&mut self, snapshot: &[ghost_core::ThreadSnapshot], ctx: &mut PolicyCtx<'_>) {
        self.tracker.resync(
            snapshot
                .iter()
                .map(|s| (s.tid, s.seq, s.runnable, s.last_cpu)),
        );
        self.heap.clear();
        self.queued.clear();
        self.pending_since.clear();
        for s in snapshot {
            if s.runnable && !s.on_cpu {
                // Elapsed runtime survives the crash in the kernel, so
                // the least-runtime-first ordering is rebuilt exactly.
                let runtime = ctx
                    .thread_view(s.tid)
                    .map(|v| self.heap_key(&v))
                    .unwrap_or(0);
                self.push(s.tid, runtime);
            }
        }
    }

    fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
        let now = ctx.now();
        let mut idle = ctx.idle_cpus();
        if idle.is_empty() || self.heap.is_empty() {
            return;
        }
        let mut skipped: Vec<HeapEntry> = Vec::new();
        let mut txns: Vec<Transaction> = Vec::new();
        let mut placed_ccx: Vec<(Tid, bool)> = Vec::new();
        while let Some(Reverse((runtime, tid))) = self.heap.pop() {
            if idle.is_empty() {
                self.heap.push(Reverse((runtime, tid)));
                break;
            }
            if !self.queued.contains(&tid) {
                continue; // Stale heap entry.
            }
            let Some(view) = ctx.thread_view(tid) else {
                self.queued.remove(&tid);
                continue;
            };
            if !view.runnable {
                self.queued.remove(&tid);
                continue;
            }
            ctx.charge(self.config.decision_cost);
            let Some((cpu, same_ccx)) = self.pick_cpu(ctx, &idle, &view.affinity, view.last_cpu)
            else {
                // cpumask ∩ idle = ∅: skip, revisit next iteration.
                skipped.push(Reverse((runtime, tid)));
                continue;
            };
            if !same_ccx {
                // Preferred CCX busy: optionally hold the thread back.
                if let Some(wait) = self.config.ccx_pending_wait {
                    let since = *self.pending_since.entry(tid).or_insert(now);
                    if now.saturating_sub(since) < wait {
                        skipped.push(Reverse((runtime, tid)));
                        // Re-check when the wait elapses, but never spin
                        // faster than 5 us.
                        ctx.request_wakeup_at((since + wait).max(now + 5_000));
                        continue;
                    }
                }
                self.ccx_migrations += 1;
            }
            self.pending_since.remove(&tid);
            idle.remove(cpu);
            self.queued.remove(&tid);
            txns.push(Transaction::new(tid, cpu).with_thread_seq(self.tracker.seq(tid)));
            placed_ccx.push((tid, same_ccx));
        }
        for entry in skipped {
            let Reverse((_, tid)) = entry;
            if self.queued.contains(&tid) {
                self.heap.push(entry);
            }
        }
        if txns.is_empty() {
            return;
        }
        ctx.commit(&mut txns);
        for txn in &txns {
            if txn.status.committed() {
                self.commits += 1;
                self.tracker.mark_scheduled(txn.tid);
            } else {
                self.failures += 1;
                let runtime = ctx
                    .thread_view(txn.tid)
                    .map(|v| self.heap_key(&v))
                    .unwrap_or(0);
                self.push(txn.tid, runtime);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_enables_everything() {
        let c = SearchConfig::default();
        assert!(c.numa_aware);
        assert!(c.ccx_aware);
        assert_eq!(c.ccx_pending_wait, Some(100_000));
    }

    #[test]
    fn heap_orders_by_least_runtime() {
        let mut p = SearchPolicy::new(SearchConfig::default());
        p.push(Tid(1), 500);
        p.push(Tid(2), 100);
        p.push(Tid(3), 300);
        let Reverse((rt, tid)) = p.heap.pop().unwrap();
        assert_eq!((rt, tid), (100, Tid(2)));
    }

    #[test]
    fn nice_aware_key_prefers_high_priority() {
        let cfg = SearchConfig {
            nice_aware: true,
            ..SearchConfig::default()
        };
        let p = SearchPolicy::new(cfg);
        let mk = |nice: i8, runtime: Nanos| ghost_core::ThreadView {
            tid: Tid(1),
            runnable: true,
            on_cpu: None,
            tseq: 0,
            last_cpu: None,
            total_runtime: runtime,
            affinity: CpuSet::first_n(4),
            nice,
            cookie: 0,
        };
        // Equal raw runtime: the nice -10 thread gets a much smaller key
        // (picked first); the nice 10 thread a much larger one.
        let hi = p.heap_key(&mk(-10, 1_000_000));
        let mid = p.heap_key(&mk(0, 1_000_000));
        let lo = p.heap_key(&mk(10, 1_000_000));
        assert!(hi < mid && mid < lo, "{hi} < {mid} < {lo}");
        assert_eq!(mid, 1_000_000);
    }

    #[test]
    fn duplicate_pushes_are_ignored() {
        let mut p = SearchPolicy::new(SearchConfig::default());
        p.push(Tid(1), 500);
        p.push(Tid(1), 100);
        assert_eq!(p.heap.len(), 1);
    }
}
