//! # ghost-workloads — workload models for the ghOSt evaluation
//!
//! Each workload implements [`ghost_sim::App`] and drives native threads
//! on the simulated kernel; which scheduler manages those threads (CFS,
//! MicroQuanta, or a ghOSt policy) is decided by the harness that wires
//! the experiment together.
//!
//! * [`arrivals`] — open-loop Poisson arrival processes and the service
//!   time distributions used across the evaluation.
//! * [`kv`] — a small in-memory key-value store standing in for RocksDB.
//! * [`rocksdb`] — the §4.2 request-serving app: a worker pool serving
//!   GET+compute requests with highly dispersive service times.
//! * [`batch`] — CPU-hungry batch/antagonist threads (§4.2, §4.3).
//! * [`snap`] — the §4.3 packet-processing workload: 6 streams of 10k
//!   messages/s with 64 B and 64 kB payloads.
//! * [`search`] — the §4.4 Google Search workload: query types A/B/C
//!   with NUMA-affine data and cache-warmth effects.
//! * [`vm`] — the §4.5 bwaves-like VM compute workload.

pub mod arrivals;
pub mod batch;
pub mod kv;
pub mod rocksdb;
pub mod search;
pub mod snap;
pub mod vm;

pub use arrivals::{Poisson, ServiceDist};
pub use batch::BatchApp;
pub use kv::KvStore;
pub use rocksdb::{RocksDbApp, RocksDbConfig, RocksDbResults};
pub use search::{SearchApp, SearchWorkloadConfig};
pub use snap::{SnapApp, SnapConfig};
pub use vm::{VmApp, VmConfig};
