//! Minimal JSON parser, used to validate exported Chrome traces in tests
//! without pulling a serde dependency into the offline build. Supports the
//! full JSON grammar (objects, arrays, strings with escapes, numbers,
//! booleans, null); numbers are parsed as f64.

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses `input` as one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => Err(format!("unexpected byte at {}", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, val: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(val)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos - 1)),
                }
            }
            _ => {
                // Re-decode multi-byte UTF-8 sequences from the source.
                let width = utf8_width(c);
                if width == 1 {
                    out.push(c as char);
                } else {
                    let start = *pos - 1;
                    let end = start + width;
                    let s = b
                        .get(start..end)
                        .and_then(|sl| std::str::from_utf8(sl).ok())
                        .ok_or("invalid utf-8 in string")?;
                    out.push_str(s);
                    *pos = end;
                }
            }
        }
    }
    Err("unterminated string".into())
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        members.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_document() {
        let doc =
            r#"{"a": [1, 2.5, -3e2], "b": {"nested": true}, "s": "hi\n\"there\"", "n": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("nested"), Some(&Json::Bool(true)));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi\n\"there\""));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let raw = "line\nwith \"quotes\" and \\slash\\ and \t tab";
        let doc = format!("{{\"k\": \"{}\"}}", escape(raw));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(raw));
    }

    #[test]
    fn parses_unicode_escape_and_utf8() {
        let v = parse("{\"k\": \"\\u00e9 caf\u{e9}\"}").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("\u{e9} caf\u{e9}"));
    }
}
