//! Declarative experiment descriptions.
//!
//! A [`Scenario`] is a *value* that fully describes one simulation:
//! topology, policy, workload, fault plan, trace knobs, and the seed.
//! Same scenario, same result — always, on any thread. That property is
//! what lets the [`crate::engine`] run scenarios concurrently while
//! each simulation stays single-threaded and byte-identical to its
//! serial run, and what lets the [`crate::cache`] key results by spec
//! content.
//!
//! Construction goes through [`ScenarioBuilder`]
//! (`Scenario::builder().cpus(8).policy(..).workload(..).seed(s).build()`),
//! which is also the repo-wide canonical setup path: benches, examples,
//! and tests that need a bespoke workload use the builder's low-level
//! finishers [`ScenarioBuilder::build_kernel`] /
//! [`ScenarioBuilder::build_with`] instead of hand-rolling
//! `Kernel::new` + `GhostRuntime::new` + install/create/spawn call
//! chains, so every setup routes through
//! [`GhostRuntime::launch_enclave`].

use crate::cache::fnv64_lines;
use crate::engine::{Experiment, ExperimentResult};
use ghost_core::enclave::EnclaveConfig;
use ghost_core::policy::GhostPolicy;
use ghost_core::runtime::{EnclaveHandle, GhostRuntime};
use ghost_core::StandbyConfig;
use ghost_policies::core_sched::{CoreSchedConfig, CoreSchedPolicy};
use ghost_policies::shinjuku::{ShinjukuConfig, ShinjukuPolicy};
use ghost_policies::snap::SNAP_COOKIE;
use ghost_policies::{
    CentralizedFifo, PerCpuPolicy, SearchConfig, SearchPolicy, ShinjukuShenangoPolicy, SnapPolicy,
};
use ghost_sim::app::{App, Next};
use ghost_sim::faults::{FaultEvent, FaultKind, FaultPlan};
use ghost_sim::kernel::{Kernel, KernelConfig, KernelState, ThreadSpec};
use ghost_sim::thread::{ThreadState, Tid};
use ghost_sim::time::{Nanos, MICROS, MILLIS};
use ghost_sim::topology::{CpuId, Topology};
use ghost_sim::CpuSet;
use ghost_trace::TraceSink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Which simulated machine to build. A spec-friendly mirror of the
/// [`Topology`] presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// `Topology::test_small(cores)`: one socket, 2-way SMT.
    Small {
        /// Physical cores; logical CPUs = 2×cores.
        cores: u16,
    },
    /// The paper's 112-CPU Skylake evaluation machine.
    Skylake112,
    /// The 72-CPU Haswell machine.
    Haswell72,
    /// The 24-CPU single-socket E5.
    E5Single24,
    /// The 256-CPU AMD Rome machine.
    Rome256,
}

impl TopologySpec {
    /// Builds the concrete topology.
    pub fn build(self) -> Topology {
        match self {
            TopologySpec::Small { cores } => Topology::test_small(cores),
            TopologySpec::Skylake112 => Topology::skylake_112(),
            TopologySpec::Haswell72 => Topology::haswell_72(),
            TopologySpec::E5Single24 => Topology::e5_single_socket_24(),
            TopologySpec::Rome256 => Topology::rome_256(),
        }
    }

    /// Stable spec label.
    pub fn label(self) -> String {
        match self {
            TopologySpec::Small { cores } => format!("small-{cores}"),
            TopologySpec::Skylake112 => "skylake-112".into(),
            TopologySpec::Haswell72 => "haswell-72".into(),
            TopologySpec::E5Single24 => "e5-24".into(),
            TopologySpec::Rome256 => "rome-256".into(),
        }
    }
}

/// The five evaluation policies (§4 of the paper), as data. Moved here
/// from `ghost-chaos` so every consumer — chaos sweeps, the CLI, CI —
/// names policies the same way; `ghost-chaos` re-exports it, keeping
/// `repro.json` files stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// The round-robin centralized FIFO of Fig. 5.
    CentralizedFifo,
    /// The per-CPU example policy of §3.2 / Fig. 3.
    PerCpu,
    /// The Shinjuku preemptive microsecond-scale policy, §4.2.
    Shinjuku,
    /// The Google Snap packet-processing policy, §4.3.
    Snap,
    /// Secure VM core scheduling with synchronized siblings, §4.5.
    CoreSched,
    /// Shinjuku + Shenango core reallocation, §4.2.
    ShinjukuShenango,
    /// The Google Search policy, §4.4.
    Search,
}

impl PolicyKind {
    /// The five-policy evaluation matrix, in sweep round-robin order.
    /// Kept at five so chaos/recovery combo assignments and existing
    /// repro files stay stable; [`PolicyKind::EVERY`] covers all seven.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::CentralizedFifo,
        PolicyKind::PerCpu,
        PolicyKind::Shinjuku,
        PolicyKind::Snap,
        PolicyKind::CoreSched,
    ];

    /// Every policy implementation in `ghost-policies` (the digest-freeze
    /// conformance test runs all seven).
    pub const EVERY: [PolicyKind; 7] = [
        PolicyKind::CentralizedFifo,
        PolicyKind::PerCpu,
        PolicyKind::Shinjuku,
        PolicyKind::Snap,
        PolicyKind::CoreSched,
        PolicyKind::ShinjukuShenango,
        PolicyKind::Search,
    ];

    /// Stable name used in spec strings, repro files, and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::CentralizedFifo => "centralized-fifo",
            PolicyKind::PerCpu => "per-cpu",
            PolicyKind::Shinjuku => "shinjuku",
            PolicyKind::Snap => "snap",
            PolicyKind::CoreSched => "core-sched",
            PolicyKind::ShinjukuShenango => "shinjuku-shenango",
            PolicyKind::Search => "search",
        }
    }

    /// Inverse of [`PolicyKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::EVERY.into_iter().find(|p| p.name() == name)
    }

    /// A fresh policy instance (also used for staged-upgrade and
    /// standby-respawn copies).
    pub fn build(self) -> Box<dyn GhostPolicy> {
        match self {
            PolicyKind::CentralizedFifo => Box::new(CentralizedFifo::new()),
            PolicyKind::PerCpu => Box::new(PerCpuPolicy::new()),
            PolicyKind::Shinjuku => Box::new(ShinjukuPolicy::new(ShinjukuConfig::default())),
            PolicyKind::Snap => Box::new(SnapPolicy::new()),
            PolicyKind::CoreSched => Box::new(CoreSchedPolicy::new(CoreSchedConfig::default())),
            PolicyKind::ShinjukuShenango => {
                Box::new(ShinjukuShenangoPolicy::new(ShinjukuConfig::default()))
            }
            PolicyKind::Search => Box::new(SearchPolicy::new(SearchConfig::default())),
        }
    }

    /// The enclave shape this policy needs (agent mode, tick delivery).
    pub fn enclave_config(self, name: &str) -> EnclaveConfig {
        match self {
            PolicyKind::CentralizedFifo => EnclaveConfig::centralized(name),
            PolicyKind::PerCpu => EnclaveConfig::per_cpu(name),
            PolicyKind::Shinjuku => EnclaveConfig::centralized(name),
            PolicyKind::Snap => EnclaveConfig::centralized(name),
            PolicyKind::CoreSched => EnclaveConfig::per_core(name).with_ticks(true),
            PolicyKind::ShinjukuShenango => EnclaveConfig::centralized(name),
            PolicyKind::Search => EnclaveConfig::centralized(name),
        }
    }

    /// Default enclave CPUs on `topo`. Core scheduling needs whole
    /// physical cores, so it takes the entire machine; every other
    /// policy leaves CPU 0 to CFS.
    pub fn enclave_cpus(self, topo: &Topology) -> CpuSet {
        match self {
            PolicyKind::CoreSched => topo.all_cpus_set(),
            _ => (1..topo.num_cpus() as u16).map(CpuId).collect(),
        }
    }

    /// Cookie for the `i`-th workload thread: Snap wants its worker
    /// marker, core scheduling wants two VM groups, the rest ignore it.
    pub fn cookie_for(self, i: usize) -> u64 {
        match self {
            PolicyKind::Snap => SNAP_COOKIE,
            PolicyKind::CoreSched => (i as u64 % 2) + 1,
            _ => 0,
        }
    }
}

/// The workload a scenario attaches to its enclave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// No threads: the caller drives its own workload through the
    /// returned [`LabRun`] / [`GhostSim`].
    None,
    /// Pulse threads: each repeatedly runs a seed-derived segment then
    /// blocks until a periodic timer re-arms it. The chaos workload.
    Pulse {
        /// Number of workload threads.
        threads: usize,
        /// Segment length range (uniform per thread).
        seg: (Nanos, Nanos),
        /// Re-arm period range (uniform per thread).
        period: (Nanos, Nanos),
    },
}

impl WorkloadSpec {
    /// The standard pulse workload: 20–200 µs segments re-armed every
    /// 0.5–2 ms — well under capacity, so sustained starvation can only
    /// come from injected faults, never from overload.
    pub fn pulse(threads: usize) -> Self {
        WorkloadSpec::Pulse {
            threads,
            seg: (20 * MICROS, 200 * MICROS),
            period: (500 * MICROS, 2 * MILLIS),
        }
    }

    fn spec_line(&self) -> String {
        match self {
            WorkloadSpec::None => "workload none".into(),
            WorkloadSpec::Pulse {
                threads,
                seg,
                period,
            } => format!(
                "workload pulse threads={threads} seg={}..{} period={}..{}",
                seg.0, seg.1, period.0, period.1
            ),
        }
    }
}

/// Stable one-line rendering of a fault event for spec strings. Field
/// names match the `repro.json` vocabulary.
fn fault_spec_line(fe: &FaultEvent) -> String {
    let body = match &fe.kind {
        FaultKind::AgentCrash { cpu } => format!("agent-crash cpu={}", cpu.0),
        FaultKind::AgentHang { cpu, dur } => format!("agent-hang cpu={} dur={dur}", cpu.0),
        FaultKind::AgentSlow { cpu, dur, factor } => {
            format!("agent-slow cpu={} dur={dur} factor={factor}", cpu.0)
        }
        FaultKind::QueueOverflow { dur } => format!("queue-overflow dur={dur}"),
        FaultKind::IpiDelay { dur, extra } => format!("ipi-delay dur={dur} extra={extra}"),
        FaultKind::IpiLoss { dur } => format!("ipi-loss dur={dur}"),
        FaultKind::SpuriousWakeup { nth } => format!("spurious-wakeup nth={nth}"),
        FaultKind::TickSkew { dur, extra } => format!("tick-skew dur={dur} extra={extra}"),
        FaultKind::Upgrade => "upgrade".into(),
    };
    format!("fault at={} {body}", fe.at)
}

/// A complete, self-contained experiment description. Pure data: two
/// equal scenarios produce byte-identical runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Label for reports and digests.
    pub name: String,
    /// The simulated machine.
    pub topology: TopologySpec,
    /// Policy under test.
    pub policy: PolicyKind,
    /// Workload attached to the enclave.
    pub workload: WorkloadSpec,
    /// Seed for the kernel RNG and the workload shape.
    pub seed: u64,
    /// Virtual run length for [`Scenario::run`].
    pub horizon: Nanos,
    /// Deterministic fault schedule (empty = no perturbation).
    pub faults: FaultPlan,
    /// Enclave watchdog timeout (`None` = watchdog off).
    pub watchdog: Option<Nanos>,
    /// Pre-stage a second policy version for in-place upgrade (§3.4).
    pub stage_upgrade: bool,
    /// Arm a hot standby with a respawn factory (§3.4 failover).
    pub standby: bool,
    /// Trace ring capacity per CPU; 0 disables tracing.
    pub trace_capacity: usize,
    /// Enclave CPUs; `None` = the policy's default placement.
    pub enclave_cpus: Option<Vec<u16>>,
    /// Timer-tick period (`None` = the kernel default; 0 = tickless).
    pub tick_ns: Option<Nanos>,
}

impl Scenario {
    /// Starts building a scenario. Defaults: 8-CPU small machine,
    /// centralized FIFO, no workload, seed 1, 100 ms horizon, no
    /// faults, no watchdog, tracing off.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The canonical spec string: every field that affects the outcome,
    /// one per line, in fixed order. This is the cache key input and
    /// the determinism contract — if two scenarios render the same
    /// spec, they must produce the same result.
    pub fn spec_string(&self) -> String {
        let mut s = String::from("ghost-lab scenario v1\n");
        s.push_str(&format!("topology {}\n", self.topology.label()));
        s.push_str(&format!("policy {}\n", self.policy.name()));
        s.push_str(&format!("{}\n", self.workload.spec_line()));
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!("horizon {}\n", self.horizon));
        match self.watchdog {
            Some(w) => s.push_str(&format!("watchdog {w}\n")),
            None => s.push_str("watchdog none\n"),
        }
        s.push_str(&format!("stage-upgrade {}\n", u8::from(self.stage_upgrade)));
        s.push_str(&format!("standby {}\n", u8::from(self.standby)));
        s.push_str(&format!("trace-capacity {}\n", self.trace_capacity));
        match self.tick_ns {
            Some(t) => s.push_str(&format!("tick {t}\n")),
            None => s.push_str("tick default\n"),
        }
        match &self.enclave_cpus {
            Some(cpus) => {
                let list: Vec<String> = cpus.iter().map(u16::to_string).collect();
                s.push_str(&format!("cpus {}\n", list.join(",")));
            }
            None => s.push_str("cpus default\n"),
        }
        for fe in &self.faults.events {
            s.push_str(&fault_spec_line(fe));
            s.push('\n');
        }
        s
    }

    /// Builds and wires the whole simulation — kernel, runtime, enclave,
    /// workload — without running it. Callers that need to poke at the
    /// half-way state (inject crashes, check agents) run the kernel
    /// themselves from here.
    pub fn launch(&self) -> LabRun {
        let sink = if self.trace_capacity > 0 {
            TraceSink::recording(1, self.trace_capacity)
        } else {
            TraceSink::Null
        };
        let mut config = KernelConfig {
            seed: self.seed,
            trace: sink.clone(),
            faults: self.faults.clone(),
            ..KernelConfig::default()
        };
        if let Some(t) = self.tick_ns {
            config.tick_ns = t;
        }
        let mut kernel = Kernel::new(self.topology.build(), config);
        let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
        let cpus: CpuSet = match &self.enclave_cpus {
            Some(list) => list.iter().copied().map(CpuId).collect(),
            None => self.policy.enclave_cpus(&kernel.state.topo),
        };
        let mut config = self.policy.enclave_config(&self.name);
        if let Some(w) = self.watchdog {
            config = config.with_watchdog(w);
        }
        if self.standby {
            config = config.with_standby(StandbyConfig::default());
        }
        let enclave = runtime.launch_enclave(&mut kernel, cpus, config, self.policy.build());
        if self.stage_upgrade {
            enclave.stage_upgrade(self.policy.build());
        }
        if self.standby {
            let policy = self.policy;
            enclave.set_standby_policy(move || policy.build());
        }

        let completions = Arc::new(Mutex::new(0u64));
        let threads = match &self.workload {
            WorkloadSpec::None => Vec::new(),
            WorkloadSpec::Pulse {
                threads,
                seg,
                period,
            } => {
                let app = kernel.state.next_app_id();
                let mut conf = HashMap::new();
                let mut tids = Vec::new();
                let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0C0F_FEE0);
                for i in 0..*threads {
                    let tid = kernel.spawn(
                        ThreadSpec::workload(&format!("w{i}"), &kernel.state.topo)
                            .app(app)
                            .cookie(self.policy.cookie_for(i)),
                    );
                    let s = rng.gen_range(seg.0..seg.1);
                    let p = rng.gen_range(period.0..period.1);
                    conf.insert(tid, (s, p));
                    tids.push(tid);
                }
                kernel.add_app(Box::new(PulseApp {
                    conf,
                    completions: Arc::clone(&completions),
                }));
                for &tid in &tids {
                    enclave.attach_thread(&mut kernel.state, tid);
                }
                for (i, &tid) in tids.iter().enumerate() {
                    kernel
                        .state
                        .arm_app_timer((i as u64 + 1) * 10_000, app, tid.0 as u64);
                }
                tids
            }
        };

        LabRun {
            sim: GhostSim {
                kernel,
                runtime,
                enclave,
                sink,
            },
            threads,
            completions,
            horizon: self.horizon,
        }
    }

    /// Launches, runs to the horizon, and summarizes. The hashable
    /// one-call path used by [`Experiment::execute`].
    pub fn run(&self) -> RunSummary {
        let mut run = self.launch();
        run.run_to_horizon();
        run.summary()
    }
}

impl Experiment for Scenario {
    fn label(&self) -> String {
        self.name.clone()
    }

    fn spec(&self) -> String {
        self.spec_string()
    }

    fn execute(&self) -> ExperimentResult {
        let summary = self.run();
        ExperimentResult {
            pass: true,
            hash: summary.hash,
            lines: summary.lines,
        }
    }
}

/// Builds [`Scenario`] values, and doubles as the repo's canonical
/// low-level setup path via [`ScenarioBuilder::build_kernel`] and
/// [`ScenarioBuilder::build_with`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self {
            scenario: Scenario {
                name: "scenario".into(),
                topology: TopologySpec::Small { cores: 4 },
                policy: PolicyKind::CentralizedFifo,
                workload: WorkloadSpec::None,
                seed: 1,
                horizon: 100 * MILLIS,
                faults: FaultPlan::none(),
                watchdog: None,
                stage_upgrade: false,
                standby: false,
                trace_capacity: 0,
                enclave_cpus: None,
                tick_ns: None,
            },
        }
    }
}

impl ScenarioBuilder {
    /// Report label.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.scenario.name = name.into();
        self
    }

    /// Shorthand for a small SMT machine with `n` logical CPUs
    /// (rounded up to a whole 2-thread core).
    pub fn cpus(mut self, n: u16) -> Self {
        self.scenario.topology = TopologySpec::Small {
            cores: n.div_ceil(2).max(1),
        };
        self
    }

    /// The simulated machine.
    pub fn topology(mut self, topo: TopologySpec) -> Self {
        self.scenario.topology = topo;
        self
    }

    /// Policy under test.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.scenario.policy = policy;
        self
    }

    /// Workload attached to the enclave.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.scenario.workload = workload;
        self
    }

    /// Seed for the kernel RNG and workload shape.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Virtual run length.
    pub fn horizon(mut self, horizon: Nanos) -> Self {
        self.scenario.horizon = horizon;
        self
    }

    /// Deterministic fault schedule.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.scenario.faults = plan;
        self
    }

    /// Enclave watchdog timeout.
    pub fn watchdog(mut self, timeout: Nanos) -> Self {
        self.scenario.watchdog = Some(timeout);
        self
    }

    /// Pre-stage a second policy version for in-place upgrade.
    pub fn stage_upgrade(mut self, yes: bool) -> Self {
        self.scenario.stage_upgrade = yes;
        self
    }

    /// Arm a hot standby with a respawn factory.
    pub fn standby(mut self, yes: bool) -> Self {
        self.scenario.standby = yes;
        self
    }

    /// Trace ring capacity per recorder CPU; 0 disables tracing.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.scenario.trace_capacity = capacity;
        self
    }

    /// Explicit enclave CPUs (default: the policy's placement).
    pub fn enclave_cpus(mut self, cpus: impl IntoIterator<Item = u16>) -> Self {
        self.scenario.enclave_cpus = Some(cpus.into_iter().collect());
        self
    }

    /// Timer-tick period (0 = tickless, §5).
    pub fn tick(mut self, tick_ns: Nanos) -> Self {
        self.scenario.tick_ns = Some(tick_ns);
        self
    }

    /// Finishes the declarative description.
    pub fn build(self) -> Scenario {
        self.scenario
    }

    /// Low-level finisher: just the kernel (topology + seed + faults +
    /// trace sink), no runtime or enclave. For baselines and tests that
    /// do not use ghOSt at all. The sink is also reachable later via
    /// [`GhostSim::sink`]-style cloning from `kernel.state.trace`.
    pub fn build_kernel(self) -> (Kernel, TraceSink) {
        let s = self.scenario;
        let sink = if s.trace_capacity > 0 {
            TraceSink::recording(1, s.trace_capacity)
        } else {
            TraceSink::Null
        };
        let mut config = KernelConfig {
            seed: s.seed,
            trace: sink.clone(),
            faults: s.faults.clone(),
            ..KernelConfig::default()
        };
        if let Some(t) = s.tick_ns {
            config.tick_ns = t;
        }
        (Kernel::new(s.topology.build(), config), sink)
    }

    /// Low-level finisher for bespoke policies and enclave shapes:
    /// builds the kernel, the runtime, and one enclave via the
    /// canonical [`GhostRuntime::launch_enclave`] path. The caller
    /// attaches its own workload.
    pub fn build_with(self, config: EnclaveConfig, policy: Box<dyn GhostPolicy>) -> GhostSim {
        let cpus_spec = self.scenario.enclave_cpus.clone();
        let (mut kernel, sink) = self.build_kernel();
        let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
        let cpus: CpuSet = match cpus_spec {
            Some(list) => list.into_iter().map(CpuId).collect(),
            None => kernel.state.topo.all_cpus_set(),
        };
        let enclave = runtime.launch_enclave(&mut kernel, cpus, config, policy);
        GhostSim {
            kernel,
            runtime,
            enclave,
            sink,
        }
    }
}

/// A wired simulation: kernel + runtime + one live enclave. What the
/// builder's low-level finisher returns; `Send`, so it can run on a
/// worker thread.
pub struct GhostSim {
    /// The simulated kernel.
    pub kernel: Kernel,
    /// The ghOSt runtime installed into it.
    pub runtime: GhostRuntime,
    /// The enclave created at build time.
    pub enclave: EnclaveHandle,
    /// The trace sink (snapshot it after running).
    pub sink: TraceSink,
}

/// A launched scenario: the wired simulation plus its workload.
pub struct LabRun {
    /// The wired simulation.
    pub sim: GhostSim,
    /// Workload thread ids, in spawn order.
    pub threads: Vec<Tid>,
    /// Shared completion counter (pulse workload segments finished).
    completions: Arc<Mutex<u64>>,
    /// The scenario horizon.
    pub horizon: Nanos,
}

impl LabRun {
    /// Runs the kernel to the scenario horizon.
    pub fn run_to_horizon(&mut self) {
        self.sim.kernel.run_until(self.horizon);
    }

    /// Workload segments completed so far.
    pub fn completions(&self) -> u64 {
        *self.completions.lock().unwrap()
    }

    /// Summarizes the observable outcome into stable, hashable lines:
    /// completion and runtime counters plus a hash of the full trace.
    /// Two runs of the same scenario must summarize identically — the
    /// engine's serial-vs-parallel check compares exactly this.
    pub fn summary(&self) -> RunSummary {
        let stats = self.sim.runtime.stats();
        let records = self.sim.sink.snapshot();
        let trace_hash = {
            let lines: Vec<String> = records.iter().map(|r| format!("{r:?}")).collect();
            fnv64_lines(&lines)
        };
        let lines = vec![
            format!("completions {}", self.completions()),
            format!("activations {}", stats.activations),
            format!("txns-committed {}", stats.txns_committed),
            format!("txns-stale {}", stats.txns_stale),
            format!("msgs-posted {}", stats.msgs_posted.iter().sum::<u64>()),
            format!("msgs-dropped {}", stats.msgs_dropped),
            format!("pnt-picks {}", stats.pnt_picks),
            format!("upgrades {}", stats.upgrades),
            format!("fallbacks {}", stats.fallbacks),
            format!("reconstructions {}", stats.reconstructions),
            format!("watchdog-destroys {}", stats.watchdog_destroys),
            format!("enclave-alive {}", u8::from(self.sim.enclave.alive())),
            format!("trace-records {}", records.len()),
            format!("trace-dropped {}", self.sim.sink.dropped()),
            format!("trace-hash {trace_hash:016x}"),
        ];
        let hash = fnv64_lines(&lines);
        RunSummary { lines, hash }
    }
}

/// The hashable outcome of one scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Stable result lines (counters + trace hash).
    pub lines: Vec<String>,
    /// FNV-1a over the lines — the digest value for this run.
    pub hash: u64,
}

/// The pulse workload app: each thread repeatedly runs a segment then
/// blocks, re-armed by a periodic timer. Tolerant of fault-induced
/// weirdness (spurious wakeups may leave a thread non-blocked when its
/// timer fires; the timer just re-arms).
struct PulseApp {
    conf: HashMap<Tid, (Nanos, Nanos)>, // (segment, period)
    completions: Arc<Mutex<u64>>,
}

impl App for PulseApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "pulse"
    }

    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        let tid = Tid(key as u32);
        let Some(&(seg, period)) = self.conf.get(&tid) else {
            return;
        };
        if k.thread(tid).state == ThreadState::Blocked {
            k.thread_mut(tid).remaining = seg;
            k.wake(tid);
        }
        let app = k.thread(tid).app.expect("pulse threads have an app");
        k.arm_app_timer(k.now + period, app, key);
    }

    fn on_segment_end(&mut self, _tid: Tid, _k: &mut KernelState) -> Next {
        *self.completions.lock().unwrap() += 1;
        Next::Block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_string_is_total() {
        let s = Scenario::builder()
            .name("spec-test")
            .cpus(8)
            .policy(PolicyKind::Shinjuku)
            .workload(WorkloadSpec::pulse(5))
            .seed(7)
            .watchdog(20 * MILLIS)
            .faults(FaultPlan::from_events([(
                MILLIS,
                FaultKind::AgentCrash { cpu: CpuId(1) },
            )]))
            .build();
        let spec = s.spec_string();
        for needle in [
            "topology small-4",
            "policy shinjuku",
            "workload pulse threads=5",
            "seed 7",
            "watchdog 20000000",
            "fault at=1000000 agent-crash cpu=1",
        ] {
            assert!(spec.contains(needle), "spec missing {needle:?}:\n{spec}");
        }
        // The name is a label, not part of the outcome: renaming must
        // not invalidate cached results.
        let renamed = Scenario {
            name: "other".into(),
            ..s.clone()
        };
        assert_eq!(spec, renamed.spec_string());
    }

    #[test]
    fn same_scenario_same_summary() {
        let s = Scenario::builder()
            .name("det")
            .cpus(8)
            .policy(PolicyKind::PerCpu)
            .workload(WorkloadSpec::pulse(4))
            .seed(3)
            .horizon(20 * MILLIS)
            .trace_capacity(1 << 14)
            .build();
        let a = s.run();
        let b = s.run();
        assert_eq!(a, b, "same scenario must produce identical summaries");
        assert!(a.lines.iter().any(|l| l.starts_with("completions ")));
    }

    #[test]
    fn whole_runs_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Kernel>();
        assert_send::<GhostRuntime>();
        assert_send::<GhostSim>();
        assert_send::<LabRun>();
        assert_send::<Scenario>();
    }
}
