//! Fixed-width text table rendering for benchmark output.
//!
//! Every harness in `ghost-bench` prints its table/figure data through this
//! type so the output is uniform and easily diffed against the paper.

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use ghost_metrics::Table;
///
/// let mut t = Table::new(vec!["op", "ns"]);
/// t.row(vec!["syscall".into(), "72".into()]);
/// let s = t.render();
/// assert!(s.contains("syscall"));
/// assert!(s.contains("72"));
/// ```
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row. Rows shorter than the header are padded with blanks;
    /// longer rows are truncated to the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().take(ncols).enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().take(widths.len()).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats nanoseconds compactly for table cells (ns / µs / ms / s).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header and rows start the second column at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn title_is_printed() {
        let t = Table::new(vec!["h"]).with_title("Table 3");
        assert!(t.render().starts_with("Table 3\n"));
        assert!(t.is_empty());
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(72), "72 ns");
        assert_eq!(fmt_ns(12_300), "12.3 us");
        assert_eq!(fmt_ns(12_300_000), "12.30 ms");
        assert_eq!(fmt_ns(12_300_000_000), "12.30 s");
    }
}
