//! Derived-metrics pass over a recorded trace: folds the raw event stream
//! into the quantities the paper's evaluation cares about — wakeup-to-run
//! latency, per-CPU class occupancy, queue-depth timelines, and commit
//! outcome rates — using `ghost-metrics` histograms.

use crate::{Nanos, TraceEvent, TraceRecord, CLASS_IDLE, NO_TID};
use ghost_metrics::LogHistogram;
use std::collections::BTreeMap;

/// Metrics folded out of one trace.
pub struct TraceMetrics {
    /// Latency from `sched_wakeup` to the thread's next switch-in, ns.
    pub wakeup_to_run: LogHistogram,
    /// Per-CPU nanoseconds spent running each scheduling class
    /// (indexed by class id 0..=4; idle time lands in `CLASS_IDLE`).
    pub occupancy: BTreeMap<u16, [u64; 5]>,
    /// Per-queue (timestamp, depth-after-event) timeline.
    pub queue_depth: BTreeMap<u32, Vec<(Nanos, u64)>>,
    /// Per-queue peak depth.
    pub queue_peak: BTreeMap<u32, u64>,
    /// Commit outcomes.
    pub txns_ok: u64,
    pub txns_estale: u64,
    pub txns_race: u64,
    /// Messages lost to queue overflow.
    pub msgs_dropped: u64,
    /// pick_next_task fast-path outcomes.
    pub pnt_hits: u64,
    pub pnt_misses: u64,
    /// ABI calls rejected at the validation boundary, total and broken
    /// down by `AbiError` kind index.
    pub abi_rejects: u64,
    pub abi_rejects_by_kind: BTreeMap<u8, u64>,
    /// Enclaves quarantined for exhausting their byzantine strike budget.
    pub quarantines: u64,
}

impl TraceMetrics {
    /// Folds `records` (in `seq` order) into metrics.
    pub fn from_records(records: &[TraceRecord]) -> Self {
        let mut m = TraceMetrics {
            wakeup_to_run: LogHistogram::new(),
            occupancy: BTreeMap::new(),
            queue_depth: BTreeMap::new(),
            queue_peak: BTreeMap::new(),
            txns_ok: 0,
            txns_estale: 0,
            txns_race: 0,
            msgs_dropped: 0,
            pnt_hits: 0,
            pnt_misses: 0,
            abi_rejects: 0,
            abi_rejects_by_kind: BTreeMap::new(),
            quarantines: 0,
        };
        // Latest un-serviced wakeup per tid.
        let mut woken: BTreeMap<u32, Nanos> = BTreeMap::new();
        // (class, since) currently occupying each CPU.
        let mut running: BTreeMap<u16, (u8, Nanos)> = BTreeMap::new();
        let mut depth: BTreeMap<u32, u64> = BTreeMap::new();
        let mut last_ts = 0;

        for rec in records {
            last_ts = last_ts.max(rec.ts);
            match rec.event {
                TraceEvent::SchedWakeup { tid, .. } => {
                    woken.entry(tid).or_insert(rec.ts);
                }
                TraceEvent::SchedSwitch {
                    cpu,
                    next_tid,
                    next_class,
                    ..
                } => {
                    if next_tid != NO_TID {
                        if let Some(woke_at) = woken.remove(&next_tid) {
                            m.wakeup_to_run
                                .record(rec.ts.saturating_sub(woke_at).max(1));
                        }
                    }
                    let (class, since) = running
                        .insert(cpu, (next_class, rec.ts))
                        .unwrap_or((CLASS_IDLE, rec.ts));
                    let bucket = (class as usize).min(4);
                    m.occupancy.entry(cpu).or_insert([0; 5])[bucket] +=
                        rec.ts.saturating_sub(since);
                }
                TraceEvent::MsgEnqueued { queue, .. } => {
                    let d = depth.entry(queue).or_insert(0);
                    *d += 1;
                    let peak = m.queue_peak.entry(queue).or_insert(0);
                    *peak = (*peak).max(*d);
                    m.queue_depth.entry(queue).or_default().push((rec.ts, *d));
                }
                TraceEvent::MsgDequeued { queue, .. } => {
                    let d = depth.entry(queue).or_insert(0);
                    *d = d.saturating_sub(1);
                    m.queue_depth.entry(queue).or_default().push((rec.ts, *d));
                }
                TraceEvent::QueueOverflow { .. } => m.msgs_dropped += 1,
                TraceEvent::TxnCommitOk { .. } => m.txns_ok += 1,
                TraceEvent::TxnCommitEstale { .. } => m.txns_estale += 1,
                TraceEvent::TxnCommitRace { .. } => m.txns_race += 1,
                TraceEvent::PntHit { .. } => m.pnt_hits += 1,
                TraceEvent::PntMiss { .. } => m.pnt_misses += 1,
                TraceEvent::AbiReject { kind, .. } => {
                    m.abi_rejects += 1;
                    *m.abi_rejects_by_kind.entry(kind).or_insert(0) += 1;
                }
                TraceEvent::EnclaveQuarantined { .. } => m.quarantines += 1,
                _ => {}
            }
        }
        // Close out whatever is still on-CPU at trace end.
        for (cpu, (class, since)) in running {
            let bucket = (class as usize).min(4);
            m.occupancy.entry(cpu).or_insert([0; 5])[bucket] += last_ts.saturating_sub(since);
        }
        m
    }

    /// Fraction of commit attempts that failed the seqnum check.
    pub fn estale_rate(&self) -> f64 {
        let total = self.txns_ok + self.txns_estale + self.txns_race;
        if total == 0 {
            0.0
        } else {
            self.txns_estale as f64 / total as f64
        }
    }

    /// Fraction of `cpu`'s accounted time spent running `class`.
    pub fn occupancy_frac(&self, cpu: u16, class: u8) -> f64 {
        match self.occupancy.get(&cpu) {
            None => 0.0,
            Some(buckets) => {
                let total: u64 = buckets.iter().sum();
                if total == 0 {
                    0.0
                } else {
                    buckets[(class as usize).min(4)] as f64 / total as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceSink, CLASS_CFS, CLASS_GHOST, PREV_BLOCKED, PREV_RUNNABLE};

    #[test]
    fn folds_wakeup_latency_occupancy_and_queues() {
        let sink = TraceSink::recording(1, 128);
        sink.emit(100, 0, || TraceEvent::SchedWakeup { cpu: 0, tid: 1 });
        sink.emit(100, 0, || TraceEvent::MsgEnqueued {
            queue: 0,
            ty: 1,
            tid: 1,
            seq: 1,
        });
        sink.emit(200, 0, || TraceEvent::MsgDequeued {
            queue: 0,
            ty: 1,
            tid: 1,
            seq: 1,
        });
        sink.emit(600, 0, || TraceEvent::SchedSwitch {
            cpu: 0,
            prev_tid: NO_TID,
            prev_class: CLASS_IDLE,
            prev_state: PREV_RUNNABLE,
            next_tid: 1,
            next_class: CLASS_GHOST,
        });
        sink.emit(1_600, 0, || TraceEvent::SchedSwitch {
            cpu: 0,
            prev_tid: 1,
            prev_class: CLASS_GHOST,
            prev_state: PREV_BLOCKED,
            next_tid: 2,
            next_class: CLASS_CFS,
        });
        sink.emit(2_100, 0, || TraceEvent::TxnCommitOk { cpu: 0, tid: 1 });
        sink.emit(2_100, 0, || TraceEvent::TxnCommitEstale { cpu: 0, tid: 2 });

        let m = TraceMetrics::from_records(&sink.snapshot());
        assert_eq!(m.wakeup_to_run.count(), 1);
        assert_eq!(m.wakeup_to_run.max(), 500);
        // ghost ran 600..1600; cfs ran 1600..2100 (closed at trace end).
        assert_eq!(m.occupancy[&0][CLASS_GHOST as usize], 1_000);
        assert_eq!(m.occupancy[&0][CLASS_CFS as usize], 500);
        assert!(m.occupancy_frac(0, CLASS_GHOST) > m.occupancy_frac(0, CLASS_CFS));
        assert_eq!(m.queue_peak[&0], 1);
        assert_eq!(m.queue_depth[&0], vec![(100, 1), (200, 0)]);
        assert_eq!(m.txns_ok, 1);
        assert_eq!(m.txns_estale, 1);
        assert!((m.estale_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn folds_abi_rejections_and_quarantines() {
        let sink = TraceSink::recording(1, 16);
        sink.emit(10, 0, || TraceEvent::AbiReject { cpu: 0, kind: 4 });
        sink.emit(20, 0, || TraceEvent::AbiReject { cpu: 0, kind: 4 });
        sink.emit(30, 0, || TraceEvent::AbiReject { cpu: 1, kind: 8 });
        sink.emit(40, 0, || TraceEvent::EnclaveQuarantined { enclave: 0 });
        let m = TraceMetrics::from_records(&sink.snapshot());
        assert_eq!(m.abi_rejects, 3);
        assert_eq!(m.abi_rejects_by_kind[&4], 2);
        assert_eq!(m.abi_rejects_by_kind[&8], 1);
        assert_eq!(m.quarantines, 1);
    }

    #[test]
    fn empty_trace_folds_to_zeroes() {
        let m = TraceMetrics::from_records(&[]);
        assert_eq!(m.wakeup_to_run.count(), 0);
        assert_eq!(m.estale_rate(), 0.0);
        assert_eq!(m.occupancy_frac(3, CLASS_GHOST), 0.0);
    }
}
