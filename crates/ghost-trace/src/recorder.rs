//! Bounded per-CPU ring buffers for trace records, ftrace-style: each CPU
//! gets its own preallocated ring, a full ring overwrites its oldest record
//! (readers prefer recent history), and overwrites are counted so consumers
//! know the stream is lossy. Nothing allocates after construction.

use crate::{Nanos, TraceEvent, TraceRecord};

#[derive(Debug)]
struct Ring {
    buf: Vec<Option<TraceRecord>>,
    /// Index of the oldest record.
    head: usize,
    /// Number of live records (≤ buf.len()).
    len: usize,
    /// Records overwritten because the ring was full.
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            buf: vec![None; capacity],
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, rec: TraceRecord) {
        let cap = self.buf.len();
        let tail = (self.head + self.len) % cap;
        if self.len == cap {
            // Overwrite the oldest record and advance the head.
            self.buf[tail] = Some(rec);
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        } else {
            self.buf[tail] = Some(rec);
            self.len += 1;
        }
    }

    fn iter(&self) -> impl Iterator<Item = &TraceRecord> + '_ {
        let cap = self.buf.len();
        (0..self.len).filter_map(move |i| self.buf[(self.head + i) % cap].as_ref())
    }
}

/// Per-CPU lossy trace storage. Records are stamped with a globally
/// monotone sequence number at record time, so the merged view is totally
/// ordered even when virtual timestamps tie.
#[derive(Debug)]
pub struct TraceRecorder {
    rings: Vec<Ring>,
    next_seq: u64,
}

impl TraceRecorder {
    /// `num_cpus` rings of `capacity` records each, fully preallocated.
    pub fn new(num_cpus: usize, capacity: usize) -> Self {
        let num_cpus = num_cpus.max(1);
        let capacity = capacity.max(1);
        TraceRecorder {
            rings: (0..num_cpus).map(|_| Ring::new(capacity)).collect(),
            next_seq: 0,
        }
    }

    /// Appends one event to `cpu`'s ring (clamped into range so a stray
    /// CPU id can never panic the hot path).
    pub fn record(&mut self, ts: Nanos, cpu: u16, event: TraceEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = (cpu as usize).min(self.rings.len() - 1);
        self.rings[idx].push(TraceRecord {
            seq,
            ts,
            cpu,
            event,
        });
    }

    /// All surviving records merged across rings, in `seq` order.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut all: Vec<TraceRecord> = self.rings.iter().flat_map(|r| r.iter().copied()).collect();
        all.sort_by_key(|r| r.seq);
        all
    }

    /// Total records overwritten across all rings.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped).sum()
    }

    /// Total records ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Discards all records (drop counters and the seq stamp survive, like
    /// `trace_pipe` consuming the buffer).
    pub fn clear(&mut self) {
        for r in &mut self.rings {
            r.head = 0;
            r.len = 0;
            for slot in &mut r.buf {
                *slot = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(cpu: u16) -> TraceEvent {
        TraceEvent::TickDelivered { cpu }
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut rec = TraceRecorder::new(1, 4);
        for i in 0..10u64 {
            rec.record(i, 0, tick(0));
        }
        assert_eq!(rec.dropped(), 6);
        assert_eq!(rec.recorded(), 10);
        let snap = rec.snapshot();
        // The four youngest records survive, in order.
        assert_eq!(
            snap.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(
            snap.iter().map(|r| r.ts).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn per_cpu_rings_merge_in_global_order() {
        let mut rec = TraceRecorder::new(2, 8);
        rec.record(1, 1, tick(1));
        rec.record(2, 0, tick(0));
        rec.record(3, 1, tick(1));
        let snap = rec.snapshot();
        assert_eq!(
            snap.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(
            snap.iter().map(|r| r.cpu).collect::<Vec<_>>(),
            vec![1, 0, 1]
        );
    }

    #[test]
    fn out_of_range_cpu_is_clamped() {
        let mut rec = TraceRecorder::new(2, 4);
        rec.record(0, 999, tick(0));
        assert_eq!(rec.snapshot().len(), 1);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut rec = TraceRecorder::new(1, 2);
        for i in 0..5 {
            rec.record(i, 0, tick(0));
        }
        rec.clear();
        assert!(rec.snapshot().is_empty());
        assert_eq!(rec.dropped(), 3);
        rec.record(9, 0, tick(0));
        assert_eq!(rec.snapshot()[0].seq, 5);
    }
}
